#include "assignment/policies.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "common/logging.h"
#include "math/entropy.h"
#include "math/statistics.h"

namespace tcrowd {

// ---------------------------------------------------------------- Random --

bool RandomPolicy::SelectTaskExcluding(const Schema& schema,
                                       const AnswerSet& answers,
                                       WorkerId worker,
                                       const std::vector<CellRef>& exclude,
                                       CellRef* out) {
  (void)schema;
  std::vector<CellRef> candidates = CandidateCells(answers, worker, exclude);
  if (candidates.empty()) return false;
  *out = candidates[rng_.UniformInt(0, static_cast<int>(candidates.size()) - 1)];
  return true;
}

// --------------------------------------------------------------- Looping --

bool LoopingPolicy::SelectTaskExcluding(const Schema& schema,
                                        const AnswerSet& answers,
                                        WorkerId worker,
                                        const std::vector<CellRef>& exclude,
                                        CellRef* out) {
  (void)schema;
  int total = answers.num_rows() * answers.num_cols();
  if (total == 0) return false;
  std::vector<char> excluded = ExclusionBitmap(answers, exclude);
  for (int step = 0; step < total; ++step) {
    int idx = (cursor_ + step) % total;
    CellRef cell{idx / answers.num_cols(), idx % answers.num_cols()};
    if (excluded[idx]) continue;
    if (answers.HasAnswered(worker, cell)) continue;
    cursor_ = (idx + 1) % total;
    *out = cell;
    return true;
  }
  return false;
}

// --------------------------------------------------------------- Entropy --

void ApplyIncrementalAnswer(const Answer& answer, TCrowdState* state) {
  int i = answer.cell.row;
  int j = answer.cell.col;
  if (!state->column_active[j]) return;
  CellPosterior& post =
      state->posteriors[static_cast<size_t>(i) * state->num_cols + j];
  if (post.type == ColumnType::kContinuous) {
    double scale = state->col_scale[j];
    double s = state->AnswerVarianceStd(answer.worker, i, j);
    double z = state->Standardize(j, answer.value.number());
    math::Normal prior(state->Standardize(j, post.mean),
                       post.variance / (scale * scale));
    math::Normal updated = prior.PosteriorGivenObservation(z, s);
    post.mean = state->Unstandardize(j, updated.mean());
    post.variance = updated.variance() * scale * scale;
  } else {
    if (post.probs.empty()) return;
    int L = static_cast<int>(post.probs.size());
    double q = state->CategoricalQuality(answer.worker, i, j);
    double wrong = (1.0 - q) / std::max(1, L - 1);
    double total = 0.0;
    for (int z = 0; z < L; ++z) {
      post.probs[z] *= (z == answer.value.label()) ? q : wrong;
      total += post.probs[z];
    }
    if (total > 0.0) {
      for (double& p : post.probs) p /= total;
    }
  }
}

void EntropyPolicy::Refresh(const Schema& schema, const AnswerSet& answers) {
  state_ = model_.Fit(schema, answers);
  fitted_ = true;
}

void EntropyPolicy::Observe(const Schema& schema, const AnswerSet& answers,
                            const Answer& answer) {
  if (!fitted_) {
    Refresh(schema, answers);
    return;
  }
  ApplyIncrementalAnswer(answer, &state_);
}

bool EntropyPolicy::SelectTaskExcluding(const Schema& schema,
                                        const AnswerSet& answers,
                                        WorkerId worker,
                                        const std::vector<CellRef>& exclude,
                                        CellRef* out) {
  if (!fitted_) Refresh(schema, answers);
  std::vector<CellRef> candidates = CandidateCells(answers, worker, exclude);
  if (candidates.empty()) return false;
  double best = -std::numeric_limits<double>::infinity();
  for (const CellRef& cell : candidates) {
    double h = state_.posterior(cell.row, cell.col).Entropy();
    if (h > best) {
      best = h;
      *out = cell;
    }
  }
  return true;
}

// ---------------------------------------------------------- InherentGain --

void InherentGainPolicy::Refresh(const Schema& schema,
                                 const AnswerSet& answers) {
  state_ = model_.Fit(schema, answers);
  fitted_ = true;
}

void InherentGainPolicy::Observe(const Schema& schema,
                                 const AnswerSet& answers,
                                 const Answer& answer) {
  if (!fitted_) {
    Refresh(schema, answers);
    return;
  }
  ApplyIncrementalAnswer(answer, &state_);
}

double InherentGainPolicy::Gain(const AnswerSet& answers, WorkerId worker,
                                CellRef cell) const {
  TCROWD_CHECK(fitted_) << "Refresh() must run before Gain()";
  InformationGain ig(&state_);
  return ig.InherentGain(answers, worker, cell);
}

bool InherentGainPolicy::ArgmaxCandidate(
    const AnswerSet& answers, WorkerId worker,
    const std::vector<CellRef>& exclude,
    const std::function<double(CellRef)>& score, CellRef* out) const {
  std::vector<CellRef> candidates = CandidateCells(answers, worker, exclude);
  if (candidates.empty()) return false;
  std::vector<double> scores(candidates.size());
  if (pool_ != nullptr) {
    pool_->ParallelFor(candidates.size(),
                       [&](size_t i) { scores[i] = score(candidates[i]); });
  } else {
    for (size_t i = 0; i < candidates.size(); ++i) {
      scores[i] = score(candidates[i]);
    }
  }
  size_t best = static_cast<size_t>(
      std::max_element(scores.begin(), scores.end()) - scores.begin());
  *out = candidates[best];
  return true;
}

bool InherentGainPolicy::SelectTaskExcluding(
    const Schema& schema, const AnswerSet& answers, WorkerId worker,
    const std::vector<CellRef>& exclude, CellRef* out) {
  if (!fitted_) Refresh(schema, answers);
  InformationGain ig(&state_);
  return ArgmaxCandidate(
      answers, worker, exclude,
      [&](CellRef cell) { return ig.InherentGain(answers, worker, cell); },
      out);
}

// -------------------------------------------------------- StructureAware --

void StructureAwarePolicy::Refresh(const Schema& schema,
                                   const AnswerSet& answers) {
  InherentGainPolicy::Refresh(schema, answers);
  correlation_ = ErrorCorrelationModel::Fit(state_, answers, corr_options_);
}

double StructureAwarePolicy::GainWithEvidence(
    const AnswerSet& answers, WorkerId worker, CellRef cell,
    const std::vector<ObservedError>& evidence) const {
  TCROWD_CHECK(fitted()) << "Refresh() must run before StructureGain()";
  InformationGain ig(&state_);
  if (evidence.empty()) return ig.InherentGain(answers, worker, cell);

  const ColumnSpec& col = state_.schema.column(cell.col);
  if (col.type == ColumnType::kCategorical) {
    // PredictCorrectProb ignores evidence on cell.col itself and reports
    // "no usable evidence" as a negative value, which GainWithAnswerModel
    // maps back to the inherent (model-default) gain.
    double q = correlation_.PredictCorrectProb(cell.col, evidence);
    return ig.GainWithAnswerModel(answers, worker, cell, q, -1.0);
  }
  bool ok = false;
  math::Normal err = correlation_.PredictErrorDist(cell.col, evidence, &ok);
  if (!ok) return ig.InherentGain(answers, worker, cell);
  // A biased error still perturbs the posterior mean, so the effective
  // observation noise is the conditional second moment.
  double var = err.variance() + err.mean() * err.mean();
  return ig.GainWithAnswerModel(answers, worker, cell, -1.0, var);
}

double StructureAwarePolicy::StructureGain(const AnswerSet& answers,
                                           WorkerId worker,
                                           CellRef cell) const {
  return GainWithEvidence(
      answers, worker, cell,
      ErrorCorrelationModel::ObservedErrorsInRow(state_, answers, worker,
                                                 cell.row, cell.col));
}

bool StructureAwarePolicy::SelectTaskExcluding(
    const Schema& schema, const AnswerSet& answers, WorkerId worker,
    const std::vector<CellRef>& exclude, CellRef* out) {
  if (!fitted()) Refresh(schema, answers);
  // The worker's evidence sets are a function of (worker, answers) only:
  // build them once, score all candidates against their row's set.
  std::vector<std::vector<ObservedError>> row_evidence =
      ErrorCorrelationModel::BuildRowEvidence(state_, answers, worker);
  return ArgmaxCandidate(
      answers, worker, exclude,
      [&](CellRef cell) {
        return GainWithEvidence(answers, worker, cell,
                                row_evidence[cell.row]);
      },
      out);
}

// ------------------------------------------------------------------ CDAS --

bool CdasPolicy::ComputeTerminated(const Schema& schema,
                                   const AnswerSet& answers,
                                   CellRef cell) const {
  const std::vector<int>& ids = answers.AnswersForCell(cell.row, cell.col);
  if (static_cast<int>(ids.size()) < options_.min_answers) return false;
  const ColumnSpec& col = schema.column(cell.col);
  if (col.type == ColumnType::kCategorical) {
    std::vector<double> counts(col.num_labels(), 0.0);
    for (int id : ids) counts[answers.answer(id).value.label()] += 1.0;
    double top = *std::max_element(counts.begin(), counts.end());
    // Add-one smoothed confidence of the leading label.
    double confidence =
        (top + 1.0) / (static_cast<double>(ids.size()) + col.num_labels());
    return confidence >= options_.confidence_threshold;
  }
  math::OnlineStats cell_stats;
  for (int id : ids) cell_stats.Add(answers.answer(id).value.number());
  double sem = std::sqrt(cell_stats.sample_variance() /
                         static_cast<double>(ids.size()));
  double spread = std::max(col_spread_[cell.col], 1e-9);
  return sem <= options_.sem_fraction * spread;
}

void CdasPolicy::Refresh(const Schema& schema, const AnswerSet& answers) {
  num_cols_ = answers.num_cols();
  terminated_.assign(
      static_cast<size_t>(answers.num_rows()) * answers.num_cols(), false);

  // Column-level answer spread for the continuous termination rule.
  std::vector<math::OnlineStats> col_stats(answers.num_cols());
  for (const Answer& a : answers.answers()) {
    if (a.value.is_continuous()) col_stats[a.cell.col].Add(a.value.number());
  }
  col_spread_.assign(answers.num_cols(), 0.0);
  for (int j = 0; j < answers.num_cols(); ++j) {
    col_spread_[j] = col_stats[j].stddev();
  }

  for (int i = 0; i < answers.num_rows(); ++i) {
    for (int j = 0; j < answers.num_cols(); ++j) {
      terminated_[static_cast<size_t>(i) * answers.num_cols() + j] =
          ComputeTerminated(schema, answers, CellRef{i, j});
    }
  }
}

void CdasPolicy::Observe(const Schema& schema, const AnswerSet& answers,
                         const Answer& answer) {
  if (terminated_.empty()) {
    Refresh(schema, answers);
    return;
  }
  size_t idx =
      static_cast<size_t>(answer.cell.row) * num_cols_ + answer.cell.col;
  if (idx < terminated_.size()) {
    terminated_[idx] = ComputeTerminated(schema, answers, answer.cell);
  }
}

bool CdasPolicy::IsTerminated(CellRef cell) const {
  size_t idx = static_cast<size_t>(cell.row) * num_cols_ + cell.col;
  if (idx >= terminated_.size()) return false;
  return terminated_[idx];
}

bool CdasPolicy::SelectTaskExcluding(const Schema& schema,
                                     const AnswerSet& answers,
                                     WorkerId worker,
                                     const std::vector<CellRef>& exclude,
                                     CellRef* out) {
  if (terminated_.empty()) Refresh(schema, answers);
  std::vector<CellRef> candidates = CandidateCells(answers, worker, exclude);
  if (candidates.empty()) return false;
  std::vector<CellRef> live;
  for (const CellRef& cell : candidates) {
    if (!IsTerminated(cell)) live.push_back(cell);
  }
  // When every task is confident, CDAS stops asking; to keep spending the
  // experiment's budget comparably, fall back to a random candidate.
  const std::vector<CellRef>& from = live.empty() ? candidates : live;
  *out = from[rng_.UniformInt(0, static_cast<int>(from.size()) - 1)];
  return true;
}

// ---------------------------------------------------------------- AskIt! --

double AskItPolicy::CellUncertainty(const Schema& schema,
                                    const AnswerSet& answers,
                                    CellRef cell) const {
  const std::vector<int>& ids = answers.AnswersForCell(cell.row, cell.col);
  const ColumnSpec& col = schema.column(cell.col);
  if (col.type == ColumnType::kCategorical) {
    if (ids.empty()) {
      return std::log(static_cast<double>(col.num_labels()));
    }
    std::vector<double> counts(col.num_labels(), 0.0);
    for (int id : ids) counts[answers.answer(id).value.label()] += 1.0;
    return math::ShannonEntropy(counts);
  }
  // Differential entropy of the sample-mean estimate in the column's
  // ORIGINAL units — deliberately incomparable with the Shannon branch,
  // as in the original system.
  math::OnlineStats stats;
  for (int id : ids) stats.Add(answers.answer(id).value.number());
  double var;
  if (ids.size() < 2) {
    double span = col.max_value - col.min_value;
    var = span * span / 12.0;  // uniform-prior variance
  } else {
    var = stats.sample_variance() / static_cast<double>(ids.size());
  }
  return math::GaussianDifferentialEntropy(var);
}

void AskItPolicy::Refresh(const Schema& schema, const AnswerSet& answers) {
  num_cols_ = answers.num_cols();
  uncertainty_.assign(
      static_cast<size_t>(answers.num_rows()) * answers.num_cols(), 0.0);
  for (int i = 0; i < answers.num_rows(); ++i) {
    for (int j = 0; j < answers.num_cols(); ++j) {
      uncertainty_[static_cast<size_t>(i) * answers.num_cols() + j] =
          CellUncertainty(schema, answers, CellRef{i, j});
    }
  }
}

void AskItPolicy::Observe(const Schema& schema, const AnswerSet& answers,
                          const Answer& answer) {
  if (uncertainty_.empty()) {
    Refresh(schema, answers);
    return;
  }
  size_t idx =
      static_cast<size_t>(answer.cell.row) * num_cols_ + answer.cell.col;
  if (idx < uncertainty_.size()) {
    uncertainty_[idx] = CellUncertainty(schema, answers, answer.cell);
  }
}

bool AskItPolicy::SelectTaskExcluding(const Schema& schema,
                                      const AnswerSet& answers,
                                      WorkerId worker,
                                      const std::vector<CellRef>& exclude,
                                      CellRef* out) {
  if (uncertainty_.empty()) Refresh(schema, answers);
  std::vector<CellRef> candidates = CandidateCells(answers, worker, exclude);
  if (candidates.empty()) return false;
  double best = -std::numeric_limits<double>::infinity();
  for (const CellRef& cell : candidates) {
    double h = uncertainty_[static_cast<size_t>(cell.row) * num_cols_ + cell.col];
    if (h > best) {
      best = h;
      *out = cell;
    }
  }
  return true;
}

}  // namespace tcrowd
