#ifndef TCROWD_ASSIGNMENT_POLICY_H_
#define TCROWD_ASSIGNMENT_POLICY_H_

#include <string>
#include <vector>

#include "data/answer.h"
#include "data/schema.h"

namespace tcrowd {

/// Online task-assignment policy (paper Definition 4): when a worker
/// arrives, decide which cell(s) to ask them about.
///
/// Protocol: the experiment loop calls Refresh() whenever the answer set has
/// grown (policies re-run/refresh their internal truth inference there),
/// then SelectTask()/SelectTasks() for each incoming worker. Policies must
/// only return cells the worker has not answered yet.
class AssignmentPolicy {
 public:
  virtual ~AssignmentPolicy() = default;

  virtual std::string name() const = 0;

  /// Re-synchronizes internal state with the (grown) answer set.
  virtual void Refresh(const Schema& schema, const AnswerSet& answers) = 0;

  /// Cheap incremental update after one new answer (the paper's
  /// acceleration: "update the truth distribution [of the answered cell]
  /// and the qualities of workers who answered it" rather than refitting).
  /// Policies that keep per-cell state override this so consecutive
  /// selections between full Refresh() calls do not chase a stale argmax.
  /// `answer` must already be contained in `answers`.
  virtual void Observe(const Schema& schema, const AnswerSet& answers,
                       const Answer& answer) {
    (void)schema;
    (void)answers;
    (void)answer;
  }

  /// Picks the best task for `worker` among cells the worker has not
  /// answered and that are not in `exclude`. Returns false when nothing is
  /// assignable.
  virtual bool SelectTaskExcluding(const Schema& schema,
                                   const AnswerSet& answers, WorkerId worker,
                                   const std::vector<CellRef>& exclude,
                                   CellRef* out) = 0;

  /// Picks the single best task for `worker`.
  bool SelectTask(const Schema& schema, const AnswerSet& answers,
                  WorkerId worker, CellRef* out) {
    return SelectTaskExcluding(schema, answers, worker, {}, out);
  }

  /// Picks up to `k` tasks (paper Section 5.3): the greedy top-K selection
  /// of Eq. 9, implemented by repeated exclusion.
  std::vector<CellRef> SelectTasks(const Schema& schema,
                                   const AnswerSet& answers, WorkerId worker,
                                   int k);
};

/// All cells the worker has not answered yet and that are not excluded.
std::vector<CellRef> CandidateCells(const AnswerSet& answers, WorkerId worker,
                                    const std::vector<CellRef>& exclude);

/// Row-major membership bitmap of `exclude` (size rows*cols). The service
/// layer passes O(cells)-long exclusion lists, so policies test against this
/// instead of a per-cell std::find.
std::vector<char> ExclusionBitmap(const AnswerSet& answers,
                                  const std::vector<CellRef>& exclude);

}  // namespace tcrowd

#endif  // TCROWD_ASSIGNMENT_POLICY_H_
