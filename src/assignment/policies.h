#ifndef TCROWD_ASSIGNMENT_POLICIES_H_
#define TCROWD_ASSIGNMENT_POLICIES_H_

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "assignment/correlation.h"
#include "assignment/info_gain.h"
#include "assignment/policy.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "inference/inference_result.h"
#include "inference/tcrowd_model.h"

namespace tcrowd {

/// Uniformly random assignment among the cells the worker has not answered
/// (the strategy of CrowdDB/Deco/Qurk per the paper's related work).
class RandomPolicy : public AssignmentPolicy {
 public:
  explicit RandomPolicy(uint64_t seed = 1) : rng_(seed) {}
  std::string name() const override { return "Random"; }
  void Refresh(const Schema&, const AnswerSet&) override {}
  bool SelectTaskExcluding(const Schema& schema, const AnswerSet& answers,
                           WorkerId worker,
                           const std::vector<CellRef>& exclude,
                           CellRef* out) override;

 private:
  Rng rng_;
};

/// Round-robin over cells in row-major order, skipping cells the worker
/// already answered.
class LoopingPolicy : public AssignmentPolicy {
 public:
  std::string name() const override { return "Looping"; }
  void Refresh(const Schema&, const AnswerSet&) override {}
  bool SelectTaskExcluding(const Schema& schema, const AnswerSet& answers,
                           WorkerId worker,
                           const std::vector<CellRef>& exclude,
                           CellRef* out) override;

 private:
  int cursor_ = 0;
};

/// Greedy maximum-uncertainty assignment using T-Crowd's posterior entropy
/// directly (paper Section 6.4.2 "Entropy" heuristic). Differential and
/// Shannon entropies are NOT comparable, so this heuristic is biased toward
/// continuous tasks — reproduced here deliberately.
class EntropyPolicy : public AssignmentPolicy {
 public:
  explicit EntropyPolicy(TCrowdOptions options = TCrowdOptions())
      : model_(std::move(options)) {}
  std::string name() const override { return "Entropy"; }
  void Refresh(const Schema& schema, const AnswerSet& answers) override;
  void Observe(const Schema& schema, const AnswerSet& answers,
               const Answer& answer) override;
  bool SelectTaskExcluding(const Schema& schema, const AnswerSet& answers,
                           WorkerId worker,
                           const std::vector<CellRef>& exclude,
                           CellRef* out) override;

 private:
  TCrowdModel model_;
  TCrowdState state_;
  bool fitted_ = false;
};

/// Applies one Bayes step for `answer` to the cell posterior held in
/// `state` (shared by the entropy/gain policies' Observe hooks).
void ApplyIncrementalAnswer(const Answer& answer, TCrowdState* state);

/// Inherent information gain policy (paper Section 5.1): assigns the task
/// whose expected delta entropy under this worker's answer model is
/// largest. Task scoring is parallelized across a thread pool (the paper's
/// Section 5.1 parallelization note).
class InherentGainPolicy : public AssignmentPolicy {
 public:
  explicit InherentGainPolicy(TCrowdOptions options = TCrowdOptions(),
                              int num_threads = 1)
      : model_(std::move(options)),
        pool_(num_threads > 1 ? std::make_unique<ThreadPool>(num_threads)
                              : nullptr) {}
  std::string name() const override { return "InherentGain"; }
  void Refresh(const Schema& schema, const AnswerSet& answers) override;
  void Observe(const Schema& schema, const AnswerSet& answers,
               const Answer& answer) override;
  bool SelectTaskExcluding(const Schema& schema, const AnswerSet& answers,
                           WorkerId worker,
                           const std::vector<CellRef>& exclude,
                           CellRef* out) override;

  /// Exposed for diagnostics/tests: IG of one cell for one worker.
  double Gain(const AnswerSet& answers, WorkerId worker, CellRef cell) const;

 protected:
  const TCrowdState& state() const { return state_; }
  bool fitted() const { return fitted_; }

  /// Scores every candidate (possibly in parallel) and returns the argmax.
  bool ArgmaxCandidate(
      const AnswerSet& answers, WorkerId worker,
      const std::vector<CellRef>& exclude,
      const std::function<double(CellRef)>& score, CellRef* out) const;

  TCrowdModel model_;
  TCrowdState state_;
  bool fitted_ = false;
  std::unique_ptr<ThreadPool> pool_;
};

/// Structure-aware information gain (paper Section 5.2): like
/// InherentGainPolicy, but when the incoming worker has already answered
/// other cells of the same row, the conditional error model P(e_j | e_k)
/// sharpens (or degrades) the predicted answer quality before computing the
/// gain.
class StructureAwarePolicy : public InherentGainPolicy {
 public:
  explicit StructureAwarePolicy(
      TCrowdOptions options = TCrowdOptions(),
      ErrorCorrelationModel::Options corr_options =
          ErrorCorrelationModel::Options(),
      int num_threads = 1)
      : InherentGainPolicy(std::move(options), num_threads),
        corr_options_(corr_options) {}
  std::string name() const override { return "StructureAware"; }
  void Refresh(const Schema& schema, const AnswerSet& answers) override;
  bool SelectTaskExcluding(const Schema& schema, const AnswerSet& answers,
                           WorkerId worker,
                           const std::vector<CellRef>& exclude,
                           CellRef* out) override;

  /// Structure-aware gain of one cell (diagnostics/tests).
  double StructureGain(const AnswerSet& answers, WorkerId worker,
                       CellRef cell) const;

  const ErrorCorrelationModel& correlation() const { return correlation_; }

 private:
  /// StructureGain against a prebuilt evidence set for the cell's row (may
  /// contain target-column entries; the correlation combiners skip them).
  /// The select path builds the worker's evidence once and scores every
  /// candidate through this.
  double GainWithEvidence(const AnswerSet& answers, WorkerId worker,
                          CellRef cell,
                          const std::vector<ObservedError>& evidence) const;

  ErrorCorrelationModel::Options corr_options_;
  ErrorCorrelationModel correlation_;
};

/// CDAS [20]: a quality-sensitive termination model. Tasks whose current
/// estimate is already confident are "terminated"; the incoming worker gets
/// a RANDOM live task. Uses majority voting / sample means as its
/// (deliberately simple) inference, as in the original system.
class CdasPolicy : public AssignmentPolicy {
 public:
  struct Options {
    /// Terminate a categorical task when the smoothed top-label share
    /// reaches this.
    double confidence_threshold = 0.9;
    /// Terminate a continuous task when the standard error of the mean
    /// drops below this fraction of the column's answer spread.
    double sem_fraction = 0.25;
    /// Minimum answers before a task may terminate.
    int min_answers = 3;
  };

  explicit CdasPolicy(uint64_t seed = 1) : rng_(seed) {}
  CdasPolicy(uint64_t seed, Options options) : rng_(seed), options_(options) {}
  std::string name() const override { return "CDAS"; }
  void Refresh(const Schema& schema, const AnswerSet& answers) override;
  void Observe(const Schema& schema, const AnswerSet& answers,
               const Answer& answer) override;
  bool SelectTaskExcluding(const Schema& schema, const AnswerSet& answers,
                           WorkerId worker,
                           const std::vector<CellRef>& exclude,
                           CellRef* out) override;

  bool IsTerminated(CellRef cell) const;

 private:
  bool ComputeTerminated(const Schema& schema, const AnswerSet& answers,
                         CellRef cell) const;

  Rng rng_;
  Options options_;
  std::vector<bool> terminated_;
  std::vector<double> col_spread_;
  int num_cols_ = 0;
};

/// AskIt! [5]: assigns the globally most uncertain task, worker-agnostic.
/// Uncertainty is raw entropy over the collected answers (Shannon entropy
/// of answer frequencies for categorical tasks, differential entropy of the
/// sample-mean distribution for continuous tasks). Because those entropies
/// live on different scales, AskIt! prefers continuous tasks first — the
/// bias the paper describes in Section 6.3.
class AskItPolicy : public AssignmentPolicy {
 public:
  std::string name() const override { return "AskIt!"; }
  void Refresh(const Schema& schema, const AnswerSet& answers) override;
  void Observe(const Schema& schema, const AnswerSet& answers,
               const Answer& answer) override;
  bool SelectTaskExcluding(const Schema& schema, const AnswerSet& answers,
                           WorkerId worker,
                           const std::vector<CellRef>& exclude,
                           CellRef* out) override;

 private:
  double CellUncertainty(const Schema& schema, const AnswerSet& answers,
                         CellRef cell) const;

  std::vector<double> uncertainty_;
  int num_cols_ = 0;
};

}  // namespace tcrowd

#endif  // TCROWD_ASSIGNMENT_POLICIES_H_
