#include "assignment/info_gain.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "math/entropy.h"
#include "math/special_functions.h"

namespace tcrowd {

double InformationGain::InherentGain(const AnswerSet& answers, WorkerId u,
                                     CellRef cell) const {
  return GainWithAnswerModel(answers, u, cell, -1.0, -1.0);
}

double InformationGain::GainWithAnswerModel(const AnswerSet& answers,
                                            WorkerId u, CellRef cell,
                                            double correct_prob,
                                            double answer_variance_std) const {
  (void)answers;  // posterior already reflects the collected answers
  const CellPosterior& post = state_->posterior(cell.row, cell.col);
  const ColumnSpec& col = state_->schema.column(cell.col);

  if (col.type == ColumnType::kContinuous) {
    double s = answer_variance_std >= 0.0
                   ? std::max(answer_variance_std, 1e-12)
                   : state_->AnswerVarianceStd(u, cell.row, cell.col);
    double var = std::max(state_->StdPosteriorVariance(cell.row, cell.col),
                          1e-12);
    double updated = 1.0 / (1.0 / var + 1.0 / s);
    // Delta differential entropy; always >= 0.
    return 0.5 * std::log(var / updated);
  }

  // Categorical: exact expectation over the predicted answer.
  const std::vector<double>& p = post.probs;
  int L = col.num_labels();
  TCROWD_CHECK(static_cast<int>(p.size()) == L)
      << "posterior size mismatch on categorical cell";
  double q = correct_prob >= 0.0
                 ? math::ClampProb(correct_prob)
                 : state_->CategoricalQuality(u, cell.row, cell.col);
  double wrong = (1.0 - q) / std::max(1, L - 1);

  double h_now = math::ShannonEntropy(p);
  // Expected posterior entropy after one answer, in O(L) instead of the
  // naive O(L^2): for a hypothetical answer y the unnormalized updated
  // posterior is u_z = p_z q for z == y and p_z wrong otherwise, so
  //   P(a = y)            = T_y = q p_y + wrong (P - p_y),  P = sum_z p_z
  //   P(a = y) H(post | y) = T_y ln T_y - [a_y ln a_y + sum_{z != y} b_z ln b_z]
  // with a_z = p_z q, b_z = p_z wrong; summing over y telescopes the bracket
  // into per-label sums S_a = sum a ln a and S_b = sum b ln b:
  //   expected_h = sum_y T_y ln T_y - S_a - (L - 1) S_b.
  // (L = 50 for high-cardinality columns like Celebrity's name attribute,
  // where the quadratic loop dominated the fig-11 assignment sweep.)
  double sum_p = 0.0, s_a = 0.0, s_b = 0.0;
  for (int z = 0; z < L; ++z) {
    double pz = p[z];
    if (pz <= 0.0) continue;
    sum_p += pz;
    double a = pz * q;
    double b = pz * wrong;
    if (a > 0.0) s_a += a * std::log(a);
    if (b > 0.0) s_b += b * std::log(b);
  }
  double expected_h = -s_a - (L - 1) * s_b;
  for (int y = 0; y < L; ++y) {
    double t = q * p[y] + wrong * (sum_p - p[y]);
    if (t > 0.0) expected_h += t * std::log(t);
  }
  return h_now - expected_h;
}

}  // namespace tcrowd
