#include "assignment/info_gain.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "math/entropy.h"
#include "math/special_functions.h"

namespace tcrowd {

double InformationGain::InherentGain(const AnswerSet& answers, WorkerId u,
                                     CellRef cell) const {
  return GainWithAnswerModel(answers, u, cell, -1.0, -1.0);
}

double InformationGain::GainWithAnswerModel(const AnswerSet& answers,
                                            WorkerId u, CellRef cell,
                                            double correct_prob,
                                            double answer_variance_std) const {
  (void)answers;  // posterior already reflects the collected answers
  const CellPosterior& post = state_->posterior(cell.row, cell.col);
  const ColumnSpec& col = state_->schema.column(cell.col);

  if (col.type == ColumnType::kContinuous) {
    double s = answer_variance_std >= 0.0
                   ? std::max(answer_variance_std, 1e-12)
                   : state_->AnswerVarianceStd(u, cell.row, cell.col);
    double var = std::max(state_->StdPosteriorVariance(cell.row, cell.col),
                          1e-12);
    double updated = 1.0 / (1.0 / var + 1.0 / s);
    // Delta differential entropy; always >= 0.
    return 0.5 * std::log(var / updated);
  }

  // Categorical: exact expectation over the predicted answer.
  const std::vector<double>& p = post.probs;
  int L = col.num_labels();
  TCROWD_CHECK(static_cast<int>(p.size()) == L)
      << "posterior size mismatch on categorical cell";
  double q = correct_prob >= 0.0
                 ? math::ClampProb(correct_prob)
                 : state_->CategoricalQuality(u, cell.row, cell.col);
  double wrong = (1.0 - q) / std::max(1, L - 1);

  double h_now = math::ShannonEntropy(p);
  double expected_h = 0.0;
  std::vector<double> updated(L);
  for (int y = 0; y < L; ++y) {
    // P(a = y) = sum_z p(z) * P(a = y | T = z).
    double p_answer = 0.0;
    double total = 0.0;
    for (int z = 0; z < L; ++z) {
      double like = (z == y) ? q : wrong;
      double joint = p[z] * like;
      p_answer += joint;
      updated[z] = joint;
      total += joint;
    }
    if (total <= 0.0 || p_answer <= 0.0) continue;
    for (double& x : updated) x /= total;
    expected_h += p_answer * math::ShannonEntropy(updated);
  }
  return h_now - expected_h;
}

}  // namespace tcrowd
