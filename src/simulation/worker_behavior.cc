#include "simulation/worker_behavior.h"

#include <cmath>
#include <utility>

#include "common/logging.h"

namespace tcrowd::sim {

namespace {

/// SplitMix64 finalizer — stable across platforms, the basis of every
/// order-independent decision in this file.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double HashToUnit(uint64_t x) {
  return static_cast<double>(Mix64(x) >> 11) * 0x1.0p-53;
}

Value HonestAnswer(const BehaviorContext& ctx, double noise_boost = 1.0) {
  return ctx.crowd->AnswerWith(ctx.worker, ctx.cell, ctx.rng, noise_boost);
}

Value UniformAnswer(const ColumnSpec& col, Rng* rng) {
  if (col.type == ColumnType::kCategorical) {
    return Value::Categorical(rng->UniformInt(0, col.num_labels() - 1));
  }
  return Value::Continuous(rng->Uniform(col.min_value, col.max_value));
}

class HonestBehavior : public WorkerBehavior {
 public:
  std::string name() const override { return "honest"; }
  Value Produce(const BehaviorContext& ctx) const override {
    return HonestAnswer(ctx);
  }
};

class SpammerBehavior : public WorkerBehavior {
 public:
  explicit SpammerBehavior(double spam_fraction)
      : spam_fraction_(spam_fraction) {}
  std::string name() const override { return "spammer"; }
  Value Produce(const BehaviorContext& ctx) const override {
    if (!InClique(kSpamCliqueSalt, ctx.worker, spam_fraction_)) {
      return HonestAnswer(ctx);
    }
    return UniformAnswer(ctx.crowd->schema().column(ctx.cell.col), ctx.rng);
  }

 private:
  double spam_fraction_;
};

class CollusionBehavior : public WorkerBehavior {
 public:
  explicit CollusionBehavior(double clique_fraction)
      : clique_fraction_(clique_fraction) {}
  std::string name() const override { return "collusion"; }
  Value Produce(const BehaviorContext& ctx) const override {
    if (!InClique(kCollusionCliqueSalt, ctx.worker, clique_fraction_)) {
      return HonestAnswer(ctx);
    }
    return WrongAnswerOracle(*ctx.crowd, ctx.cell);
  }

 private:
  double clique_fraction_;
};

class DriftBehavior : public WorkerBehavior {
 public:
  DriftBehavior(double end_noise_boost, double drift_fraction)
      : end_noise_boost_(end_noise_boost), drift_fraction_(drift_fraction) {}
  std::string name() const override { return "drift"; }
  Value Produce(const BehaviorContext& ctx) const override {
    if (!InClique(kDriftCliqueSalt, ctx.worker, drift_fraction_)) {
      return HonestAnswer(ctx);
    }
    double boost = 1.0 + ctx.progress * (end_noise_boost_ - 1.0);
    return HonestAnswer(ctx, boost);
  }

 private:
  double end_noise_boost_;
  double drift_fraction_;
};

class SleeperBehavior : public WorkerBehavior {
 public:
  SleeperBehavior(double sleeper_fraction, double turn_at)
      : sleeper_fraction_(sleeper_fraction), turn_at_(turn_at) {}
  std::string name() const override { return "sleeper"; }
  Value Produce(const BehaviorContext& ctx) const override {
    if (ctx.progress < turn_at_ ||
        !InClique(kSleeperCliqueSalt, ctx.worker, sleeper_fraction_)) {
      return HonestAnswer(ctx);
    }
    return WrongAnswerOracle(*ctx.crowd, ctx.cell);
  }

 private:
  double sleeper_fraction_;
  double turn_at_;
};

}  // namespace

bool InClique(uint64_t salt, WorkerId worker, double fraction) {
  if (fraction <= 0.0) return false;
  if (fraction >= 1.0) return true;
  return HashToUnit(salt ^ (static_cast<uint64_t>(worker) << 20)) < fraction;
}

Value WrongAnswerOracle(const CrowdSimulator& crowd, CellRef cell) {
  const ColumnSpec& col = crowd.schema().column(cell.col);
  const Value& truth = crowd.truth().at(cell);
  uint64_t h =
      Mix64((static_cast<uint64_t>(cell.row) << 24) ^ cell.col ^ 0x4f52434cull);
  if (col.type == ColumnType::kCategorical) {
    int labels = col.num_labels();
    TCROWD_CHECK(labels >= 2);
    int offset = 1 + static_cast<int>(h % static_cast<uint64_t>(labels - 1));
    return Value::Categorical((truth.label() + offset) % labels);
  }
  // A consistent 3-to-5-sigma shift in standardized units, sign fixed per
  // cell: far enough to corrupt frequency averaging, close enough to look
  // like an opinionated worker rather than an outlier filter's easy prey.
  double sigmas = 3.0 + static_cast<double>(h % 3ull);
  double sign = (h & 8ull) != 0 ? 1.0 : -1.0;
  return Value::Continuous(truth.number() +
                           sign * sigmas * crowd.col_scale()[cell.col]);
}

std::unique_ptr<WorkerBehavior> MakeHonestBehavior() {
  return std::make_unique<HonestBehavior>();
}

std::unique_ptr<WorkerBehavior> MakeSpammerBehavior(double spam_fraction) {
  return std::make_unique<SpammerBehavior>(spam_fraction);
}

std::unique_ptr<WorkerBehavior> MakeCollusionBehavior(double clique_fraction) {
  return std::make_unique<CollusionBehavior>(clique_fraction);
}

std::unique_ptr<WorkerBehavior> MakeDriftBehavior(double end_noise_boost,
                                                  double drift_fraction) {
  return std::make_unique<DriftBehavior>(end_noise_boost, drift_fraction);
}

std::unique_ptr<WorkerBehavior> MakeSleeperBehavior(double sleeper_fraction,
                                                    double turn_at) {
  return std::make_unique<SleeperBehavior>(sleeper_fraction, turn_at);
}

}  // namespace tcrowd::sim
