#include "simulation/arrival_model.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"
#include "simulation/worker_behavior.h"

namespace tcrowd::sim {

namespace {

class SteadyArrivals : public ArrivalModel {
 public:
  std::string name() const override { return "steady"; }
  WorkerId Next(const ArrivalContext& ctx) const override {
    return ctx.crowd->NextWorker(ctx.rng);
  }
};

class BurstArrivals : public ArrivalModel {
 public:
  BurstArrivals(double wave_start, double wave_end, double intensity,
                uint64_t salt, double clique_fraction)
      : wave_start_(wave_start),
        wave_end_(wave_end),
        intensity_(intensity),
        salt_(salt),
        clique_fraction_(clique_fraction) {}
  std::string name() const override { return "burst"; }
  WorkerId Next(const ArrivalContext& ctx) const override {
    bool in_wave =
        ctx.progress >= wave_start_ && ctx.progress < wave_end_;
    if (in_wave && ctx.rng->Bernoulli(intensity_)) {
      // Uniform over the clique. The clique is a fixed hash-selected
      // subset, so enumerate it; pools are tens-to-hundreds of workers.
      std::vector<WorkerId> crew;
      for (WorkerId w = 0; w < ctx.crowd->num_workers(); ++w) {
        if (InClique(salt_, w, clique_fraction_)) crew.push_back(w);
      }
      if (!crew.empty()) {
        return crew[ctx.rng->UniformInt(0, static_cast<int>(crew.size()) - 1)];
      }
    }
    return ctx.crowd->NextWorker(ctx.rng);
  }

 private:
  double wave_start_;
  double wave_end_;
  double intensity_;
  uint64_t salt_;
  double clique_fraction_;
};

class ChurnArrivals : public ArrivalModel {
 public:
  explicit ChurnArrivals(double cohort_fraction)
      : cohort_fraction_(cohort_fraction) {}
  std::string name() const override { return "churn"; }
  WorkerId Next(const ArrivalContext& ctx) const override {
    int pool = ctx.crowd->num_workers();
    int width = std::max(
        1, static_cast<int>(cohort_fraction_ * static_cast<double>(pool)));
    // The window's start slides across the whole pool exactly once over the
    // run, so the first cohort has fully churned out by the end.
    double p = std::clamp(ctx.progress, 0.0, 1.0);
    int start = static_cast<int>(p * static_cast<double>(pool - width) +
                                 0.5);
    return static_cast<WorkerId>(start + ctx.rng->UniformInt(0, width - 1));
  }

 private:
  double cohort_fraction_;
};

}  // namespace

std::unique_ptr<ArrivalModel> MakeSteadyArrivals() {
  return std::make_unique<SteadyArrivals>();
}

std::unique_ptr<ArrivalModel> MakeBurstArrivals(double wave_start,
                                                double wave_end,
                                                double intensity,
                                                uint64_t salt,
                                                double clique_fraction) {
  return std::make_unique<BurstArrivals>(wave_start, wave_end, intensity,
                                         salt, clique_fraction);
}

std::unique_ptr<ArrivalModel> MakeChurnArrivals(double cohort_fraction) {
  return std::make_unique<ChurnArrivals>(cohort_fraction);
}

}  // namespace tcrowd::sim
