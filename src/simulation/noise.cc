#include "simulation/noise.h"

#include <cmath>
#include <unordered_set>
#include <vector>

#include "common/logging.h"
#include "math/statistics.h"

namespace tcrowd::sim {

int InjectNoise(double gamma, Rng* rng, Dataset* dataset) {
  TCROWD_CHECK(gamma >= 0.0 && gamma <= 1.0) << "gamma " << gamma;
  AnswerSet& answers = dataset->answers;
  if (answers.empty() || gamma == 0.0) return 0;

  // Per-column mean/std of the current answers, for the z-score transform.
  int cols = dataset->schema.num_columns();
  std::vector<math::OnlineStats> col_stats(cols);
  for (const Answer& a : answers.answers()) {
    if (a.value.is_continuous()) col_stats[a.cell.col].Add(a.value.number());
  }

  int num_draws = static_cast<int>(
      std::floor(gamma * static_cast<double>(answers.size())));
  std::unordered_set<int> touched;
  for (int d = 0; d < num_draws; ++d) {
    // With replacement: the same answer may be drawn (and re-noised) twice.
    int id = rng->UniformInt(0, static_cast<int>(answers.size()) - 1);
    const Answer& a = answers.answer(id);
    const ColumnSpec& col = dataset->schema.column(a.cell.col);
    if (col.type == ColumnType::kCategorical) {
      answers.ReplaceValue(
          id, Value::Categorical(rng->UniformInt(0, col.num_labels() - 1)));
    } else {
      double mean = col_stats[a.cell.col].mean();
      double sd = col_stats[a.cell.col].stddev();
      if (sd < 1e-12) sd = 1.0;
      double z = (a.value.number() - mean) / sd;
      z += rng->Gaussian(0.0, 1.0);
      answers.ReplaceValue(id, Value::Continuous(mean + z * sd));
    }
    touched.insert(id);
  }
  return static_cast<int>(touched.size());
}

}  // namespace tcrowd::sim
