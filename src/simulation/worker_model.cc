#include "simulation/worker_model.h"

#include <cmath>

#include "common/logging.h"
#include "math/special_functions.h"

namespace tcrowd::sim {

double TrueWorkerQuality(const WorkerProfile& worker, double epsilon) {
  return math::Erf(epsilon / std::sqrt(2.0 * worker.phi));
}

Value GenerateAnswer(const WorkerProfile& worker, const ColumnSpec& column,
                     const Value& truth, const AnswerDraw& draw, Rng* rng) {
  TCROWD_CHECK(truth.valid()) << "cannot answer a cell without ground truth";
  double variance = draw.row_difficulty * draw.col_difficulty * worker.phi *
                    draw.row_factor;
  TCROWD_CHECK(variance > 0.0) << "non-positive answer variance";
  if (column.type == ColumnType::kContinuous) {
    double rho = draw.bias_rho;
    double z = rho * draw.shared_bias +
               std::sqrt(std::max(0.0, 1.0 - rho * rho)) *
                   rng->Gaussian(0.0, 1.0);
    double noise = z * std::sqrt(variance) * draw.col_scale;
    return Value::Continuous(truth.number() + noise);
  }
  double q = math::Erf(draw.epsilon / std::sqrt(2.0 * variance));
  if (rng->Bernoulli(q)) return truth;
  // Uniform over the remaining labels.
  int L = column.num_labels();
  int offset = rng->UniformInt(1, L - 1);
  return Value::Categorical((truth.label() + offset) % L);
}

}  // namespace tcrowd::sim
