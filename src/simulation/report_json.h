#ifndef TCROWD_SIMULATION_REPORT_JSON_H_
#define TCROWD_SIMULATION_REPORT_JSON_H_

#include <string>

#include "common/status.h"
#include "simulation/load_generator.h"
#include "simulation/scenario.h"

namespace tcrowd::sim {

/// Machine-readable serve-sim output (`--report-json=FILE`): one JSON
/// object per run, so CI jobs and notebooks consume the numbers without
/// scraping the human listing. Plain flat JSON emitted by hand — the
/// values are ints/doubles/short names, nothing needing a JSON library.

/// A plain load-generator run. `final_error_rate` / `final_mnad` are the
/// post-Finalize quality numbers (pass NaN when ground truth is unknown —
/// they are then emitted as null).
std::string FormatLoadReportJson(const LoadReport& report,
                                 double final_error_rate, double final_mnad);

/// A scenario run, including the quality-vs-budget curve.
std::string FormatScenarioReportJson(const ScenarioReport& report,
                                     double final_error_rate,
                                     double final_mnad);

/// Atomically writes `json` to `path` (temp + rename).
Status WriteReportJson(const std::string& path, const std::string& json);

}  // namespace tcrowd::sim

#endif  // TCROWD_SIMULATION_REPORT_JSON_H_
