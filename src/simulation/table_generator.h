#ifndef TCROWD_SIMULATION_TABLE_GENERATOR_H_
#define TCROWD_SIMULATION_TABLE_GENERATOR_H_

#include <vector>

#include "common/rng.h"
#include "data/schema.h"
#include "data/table.h"

namespace tcrowd::sim {

/// The paper's Section 6.5.1 synthetic-table generator: M columns, a given
/// ratio of categorical columns, label counts drawn from U(2,10), continuous
/// domain [0,1000], ground truth uniform over the domain, and row/column
/// difficulties scaled so that the mean of alpha_i * beta_j matches
/// `mean_difficulty`.
struct TableGeneratorOptions {
  int num_rows = 100;
  int num_cols = 10;
  /// Fraction of columns that are categorical (paper's R knob).
  double categorical_ratio = 0.5;
  int min_labels = 2;
  int max_labels = 10;
  double domain_min = 0.0;
  double domain_max = 1000.0;
  /// Target mean of alpha_i * beta_j (paper's mu_{alpha_i beta_j} knob).
  double mean_difficulty = 1.0;
  /// Log-space spread of the difficulty draws.
  double difficulty_log_sigma = 0.3;
};

/// A generated world: schema, ground truth, and the hidden difficulties.
struct GeneratedTable {
  Schema schema;
  Table truth;
  std::vector<double> row_difficulty;  ///< alpha_i
  std::vector<double> col_difficulty;  ///< beta_j
};

GeneratedTable GenerateTable(const TableGeneratorOptions& options, Rng* rng);

}  // namespace tcrowd::sim

#endif  // TCROWD_SIMULATION_TABLE_GENERATOR_H_
