#include "simulation/scenario.h"

#include <algorithm>
#include <deque>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "inference/majority_voting.h"
#include "inference/tcrowd_model.h"
#include "platform/metrics.h"

namespace tcrowd::sim {

namespace {

const std::vector<ScenarioSpec>& Registry() {
  static const std::vector<ScenarioSpec>* kRegistry = [] {
    auto* r = new std::vector<ScenarioSpec>;
    auto add = [r](std::string name, std::string description,
                   std::shared_ptr<const WorkerBehavior> behavior,
                   std::shared_ptr<const ArrivalModel> arrivals,
                   double retract_prob = 0.0, int retract_delay = 24) {
      ScenarioSpec spec;
      spec.name = std::move(name);
      spec.description = std::move(description);
      spec.behavior = std::move(behavior);
      spec.arrivals = std::move(arrivals);
      spec.retract_prob = retract_prob;
      spec.retract_delay = retract_delay;
      r->push_back(std::move(spec));
    };
    add("baseline-honest",
        "the paper's generative crowd, steady arrivals — the control run",
        MakeHonestBehavior(), MakeSteadyArrivals());
    add("spam-wave",
        "30% of the pool answers uniformly at random and floods the queue "
        "mid-run (progress 0.25-0.75)",
        MakeSpammerBehavior(0.3),
        MakeBurstArrivals(/*wave_start=*/0.25, /*wave_end=*/0.75,
                          /*intensity=*/0.6, kSpamCliqueSalt,
                          /*clique_fraction=*/0.3));
    add("collusion-ring",
        "a quarter of the pool emits a shared plausible-but-wrong answer "
        "per cell — the wrong answers agree with each other",
        MakeCollusionBehavior(0.25), MakeSteadyArrivals());
    add("quality-drift",
        "half the pool degrades linearly to 8x its answer variance as the "
        "budget is spent",
        MakeDriftBehavior(/*end_noise_boost=*/8.0, /*drift_fraction=*/0.5),
        MakeSteadyArrivals());
    add("retraction-storm",
        "honest crowd, but a quarter of the accepted answers are later "
        "disavowed — drives the live tombstone/backfill path end to end",
        MakeHonestBehavior(), MakeSteadyArrivals(),
        /*retract_prob=*/0.25, /*retract_delay=*/16);
    add("sleeper-cell",
        "35% of a churning pool answers honestly until half the budget is "
        "spent, then switches to the collusion oracle",
        MakeSleeperBehavior(/*sleeper_fraction=*/0.35, /*turn_at=*/0.5),
        MakeChurnArrivals(/*cohort_fraction=*/0.4));
    return r;
  }();
  return *kRegistry;
}

}  // namespace

std::vector<std::string> ScenarioNames() {
  std::vector<std::string> names;
  names.reserve(Registry().size());
  for (const ScenarioSpec& spec : Registry()) names.push_back(spec.name);
  return names;
}

bool FindScenario(const std::string& name, ScenarioSpec* spec) {
  for (const ScenarioSpec& candidate : Registry()) {
    if (candidate.name == name) {
      *spec = candidate;
      return true;
    }
  }
  return false;
}

std::string FormatQualityCurveCsv(const ScenarioReport& report) {
  std::string csv =
      "scenario,budget,tcrowd_error_rate,tcrowd_mnad,mv_error_rate,mv_mnad\n";
  for (const QualityPoint& p : report.curve) {
    csv += StrFormat("%s,%lld,%.6f,%.6f,%.6f,%.6f\n",
                     report.scenario.c_str(),
                     static_cast<long long>(p.budget), p.tcrowd_error_rate,
                     p.tcrowd_mnad, p.mv_error_rate, p.mv_mnad);
  }
  return csv;
}

ScenarioRunner::ScenarioRunner(ScenarioSpec spec, const CrowdSimulator* crowd,
                               service::CrowdService* service,
                               ScenarioOptions options)
    : spec_(std::move(spec)),
      crowd_(crowd),
      service_(service),
      options_(options) {
  TCROWD_CHECK(crowd_ != nullptr);
  TCROWD_CHECK(service_ != nullptr);
  TCROWD_CHECK(spec_.behavior != nullptr);
  TCROWD_CHECK(spec_.arrivals != nullptr);
  options_.checkpoints = std::max(1, options_.checkpoints);
  options_.tasks_per_request = std::max(1, options_.tasks_per_request);
  options_.max_arrivals = std::max<int64_t>(1, options_.max_arrivals);
}

ScenarioReport ScenarioRunner::Run() {
  ScenarioReport report;
  report.scenario = spec_.name;
  const Schema& schema = crowd_->schema();
  const Table& truth = crowd_->truth();
  const int64_t budget = service_->config().max_total_answers;
  TCROWD_CHECK(budget > 0);
  Rng rng(options_.seed);

  // Both aggregators run as full batch fits over the engine's live answer
  // snapshot: the curve compares methods on identical evidence, independent
  // of the engine's own refresh cadence.
  auto measure = [&](int64_t budget_mark) {
    QualityPoint point;
    point.budget = budget_mark;
    AnswerSet snapshot = service_->engine().SnapshotAnswers();
    if (snapshot.empty()) return point;
    TCrowdModel tcrowd(service_->config().inference.tcrowd_options);
    InferenceResult tc = tcrowd.Infer(schema, snapshot);
    InferenceResult mv = MajorityVoting().Infer(schema, snapshot);
    point.tcrowd_error_rate = Metrics::ErrorRate(truth, tc.estimated_truth);
    point.tcrowd_mnad = Metrics::Mnad(truth, tc.estimated_truth);
    point.mv_error_rate = Metrics::ErrorRate(truth, mv.estimated_truth);
    point.mv_mnad = Metrics::Mnad(truth, mv.estimated_truth);
    return point;
  };

  // Evenly spaced budget checkpoints (on NET spend — retraction refunds
  // push a checkpoint crossing back out).
  std::vector<int64_t> checkpoints;
  for (int c = 1; c <= options_.checkpoints; ++c) {
    int64_t mark = budget * c / options_.checkpoints;
    if (mark > 0 && (checkpoints.empty() || mark != checkpoints.back())) {
      checkpoints.push_back(mark);
    }
  }
  size_t next_checkpoint = 0;

  struct PendingRetraction {
    int64_t due;  ///< gross accepted count at which the disavowal lands
    WorkerId worker;
    CellRef cell;
  };
  std::deque<PendingRetraction> pending;

  // Accepted answers, retracted ones included. Starts at the service's
  // restored net spend so a crash-restarted run resumes the budget axis
  // (and the progress clock) where the durable log left off.
  int64_t gross = service_->Stats().budget_spent;
  auto net = [&]() { return gross - report.answers_retracted; };
  auto progress = [&]() {
    return std::clamp(static_cast<double>(net()) /
                          static_cast<double>(budget),
                      0.0, 1.0);
  };
  auto crashed = [&]() {
    return options_.stop_after_answers > 0 &&
           gross >= options_.stop_after_answers;
  };

  while (report.arrivals < options_.max_arrivals && !service_->Drained() &&
         !crashed()) {
    ArrivalContext arrival_ctx{crowd_, report.arrivals, progress(), &rng};
    WorkerId worker = spec_.arrivals->Next(arrival_ctx);
    ++report.arrivals;

    service::CrowdService::SessionId session = service_->StartSession(worker);
    std::vector<CellRef> tasks =
        service_->RequestTasks(session, options_.tasks_per_request);
    for (const CellRef& cell : tasks) {
      BehaviorContext behavior_ctx{crowd_, worker, cell, progress(), &rng};
      Value value = spec_.behavior->Produce(behavior_ctx);
      Status st = service_->SubmitAnswer(session, cell, value);
      if (st.ok()) {
        ++gross;
        ++report.answers_accepted;
        if (spec_.retract_prob > 0.0 && rng.Bernoulli(spec_.retract_prob)) {
          pending.push_back(
              {gross + spec_.retract_delay, worker, cell});
        }
      } else {
        ++report.rejected;
      }
      if (crashed()) break;  // "crash": drop the unanswered leases
    }
    service_->EndSession(session);
    if (crashed()) break;

    // Land the disavowals that have come due.
    while (!pending.empty() && pending.front().due <= gross) {
      PendingRetraction p = pending.front();
      pending.pop_front();
      Status st = service_->RetractAnswer(p.worker, p.cell);
      if (st.ok()) {
        ++report.answers_retracted;
      } else {
        ++report.retraction_misses;
      }
    }

    while (next_checkpoint < checkpoints.size() &&
           net() >= checkpoints[next_checkpoint]) {
      report.curve.push_back(measure(checkpoints[next_checkpoint]));
      ++next_checkpoint;
    }
  }

  report.stopped_early = crashed();
  if (!report.stopped_early) {
    // Flush the not-yet-due disavowals so the storm's full pressure lands,
    // then close the curve with the final state (which the flush may have
    // pushed back below the last checkpoint — quality after the storm).
    while (!pending.empty()) {
      PendingRetraction p = pending.front();
      pending.pop_front();
      if (service_->RetractAnswer(p.worker, p.cell).ok()) {
        ++report.answers_retracted;
      } else {
        ++report.retraction_misses;
      }
    }
    if (net() > 0 &&
        (report.curve.empty() || report.curve.back().budget != net())) {
      report.curve.push_back(measure(net()));
    }
  }

  report.final_stats = service_->Stats();
  return report;
}

}  // namespace tcrowd::sim
