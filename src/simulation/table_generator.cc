#include "simulation/table_generator.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace tcrowd::sim {

GeneratedTable GenerateTable(const TableGeneratorOptions& options, Rng* rng) {
  TCROWD_CHECK(options.num_rows > 0 && options.num_cols > 0);
  TCROWD_CHECK(options.categorical_ratio >= 0.0 &&
               options.categorical_ratio <= 1.0);
  TCROWD_CHECK(options.mean_difficulty > 0.0);

  GeneratedTable out;

  // Column specs: the first round(R*M) columns categorical, the rest
  // continuous, then shuffled so types interleave.
  int num_cat = static_cast<int>(
      std::lround(options.categorical_ratio * options.num_cols));
  std::vector<bool> is_cat(options.num_cols, false);
  std::fill(is_cat.begin(), is_cat.begin() + num_cat, true);
  rng->Shuffle(&is_cat);

  std::vector<ColumnSpec> columns;
  for (int j = 0; j < options.num_cols; ++j) {
    if (is_cat[j]) {
      int L = rng->UniformInt(options.min_labels, options.max_labels);
      std::vector<std::string> labels;
      labels.reserve(L);
      for (int l = 0; l < L; ++l) {
        labels.push_back(StrFormat("c%d_l%d", j, l));
      }
      columns.push_back(
          Schema::MakeCategorical(StrFormat("cat_%d", j), std::move(labels)));
    } else {
      columns.push_back(Schema::MakeContinuous(
          StrFormat("num_%d", j), options.domain_min, options.domain_max));
    }
  }
  out.schema = Schema(std::move(columns));

  // Ground truth uniform over each column's domain.
  out.truth = Table(out.schema, options.num_rows);
  for (int i = 0; i < options.num_rows; ++i) {
    for (int j = 0; j < options.num_cols; ++j) {
      const ColumnSpec& col = out.schema.column(j);
      if (col.type == ColumnType::kCategorical) {
        out.truth.Set(i, j,
                      Value::Categorical(
                          rng->UniformInt(0, col.num_labels() - 1)));
      } else {
        out.truth.Set(i, j, Value::Continuous(rng->Uniform(
                                col.min_value, col.max_value)));
      }
    }
  }

  // Difficulties: log-normal draws rescaled so mean(alpha_i * beta_j)
  // matches the requested average difficulty.
  out.row_difficulty.resize(options.num_rows);
  out.col_difficulty.resize(options.num_cols);
  for (double& a : out.row_difficulty) {
    a = rng->LogNormal(0.0, options.difficulty_log_sigma);
  }
  for (double& b : out.col_difficulty) {
    b = rng->LogNormal(0.0, options.difficulty_log_sigma);
  }
  double mean_product = 0.0;
  for (double a : out.row_difficulty) {
    for (double b : out.col_difficulty) mean_product += a * b;
  }
  mean_product /= static_cast<double>(options.num_rows * options.num_cols);
  double correction = std::sqrt(options.mean_difficulty / mean_product);
  for (double& a : out.row_difficulty) a *= correction;
  for (double& b : out.col_difficulty) b *= correction;

  return out;
}

}  // namespace tcrowd::sim
