#ifndef TCROWD_SIMULATION_NOISE_H_
#define TCROWD_SIMULATION_NOISE_H_

#include "common/rng.h"
#include "data/dataset.h"

namespace tcrowd::sim {

/// The paper's Section 6.5.2 noise procedure: a fraction gamma of the
/// collected answers (chosen uniformly WITH replacement, as in the paper) is
/// perturbed. Categorical answers are replaced by a uniformly random label
/// from the column's domain; continuous answers are z-scored within their
/// column, shifted by N(0,1), and mapped back to the original scale.
/// Returns the number of distinct answers that were modified.
int InjectNoise(double gamma, Rng* rng, Dataset* dataset);

}  // namespace tcrowd::sim

#endif  // TCROWD_SIMULATION_NOISE_H_
