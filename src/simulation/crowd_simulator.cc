#include "simulation/crowd_simulator.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace tcrowd::sim {

namespace {
/// SplitMix64 finalizer — the stable hash behind PairSeed().
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}
}  // namespace

CrowdSimulator::CrowdSimulator(const CrowdOptions& options,
                               const Schema& schema, const Table& truth,
                               std::vector<double> row_difficulty,
                               std::vector<double> col_difficulty,
                               std::vector<double> col_scale, Rng rng)
    : options_(options),
      schema_(&schema),
      truth_(&truth),
      row_difficulty_(std::move(row_difficulty)),
      col_difficulty_(std::move(col_difficulty)),
      col_scale_(std::move(col_scale)),
      rng_(rng) {
  TCROWD_CHECK(static_cast<int>(row_difficulty_.size()) == truth.num_rows());
  TCROWD_CHECK(static_cast<int>(col_difficulty_.size()) ==
               schema.num_columns());
  TCROWD_CHECK(static_cast<int>(col_scale_.size()) == schema.num_columns());
  TCROWD_CHECK(options.num_workers > 0);

  workers_.resize(options.num_workers);
  arrival_weights_.resize(options.num_workers);
  for (int w = 0; w < options.num_workers; ++w) {
    workers_[w].id = w;
    workers_[w].phi =
        rng_.LogNormal(std::log(options.phi_median), options.phi_log_sigma);
    arrival_weights_[w] =
        std::pow(rng_.Uniform(1e-3, 1.0), options.participation_skew);
  }
  // Salt for AnswerWith(): peek the next engine output through a copy so
  // rng_ itself is not advanced — every existing lazy-draw sequence stays
  // bit-identical to before this salt existed.
  Rng peek = rng_;
  pair_seed_ = peek.engine()();
}

CrowdSimulator::CrowdSimulator(const CrowdOptions& options,
                               const Schema& schema, const Table& truth,
                               Rng rng)
    : CrowdSimulator(options, schema, truth,
                     std::vector<double>(truth.num_rows(), 1.0),
                     std::vector<double>(schema.num_columns(), 1.0),
                     DefaultColumnScales(schema), rng) {}

std::vector<double> CrowdSimulator::DefaultColumnScales(const Schema& schema) {
  std::vector<double> scales(schema.num_columns(), 1.0);
  for (int j = 0; j < schema.num_columns(); ++j) {
    const ColumnSpec& col = schema.column(j);
    if (col.type == ColumnType::kContinuous) {
      scales[j] = (col.max_value - col.min_value) / 6.0;
    }
  }
  return scales;
}

const WorkerProfile& CrowdSimulator::worker(WorkerId id) const {
  TCROWD_CHECK(id >= 0 && id < num_workers()) << "worker " << id;
  return workers_[id];
}

double CrowdSimulator::TrueQuality(WorkerId id) const {
  return TrueWorkerQuality(worker(id), options_.epsilon);
}

WorkerId CrowdSimulator::NextWorker() {
  return static_cast<WorkerId>(rng_.Categorical(arrival_weights_));
}

double CrowdSimulator::RowUnfamiliarProb(int row) {
  auto it = row_unfamiliar_prob_.find(row);
  if (it != row_unfamiliar_prob_.end()) return it->second;
  double p = options_.unfamiliar_prob;
  if (options_.unfamiliar_row_log_sigma > 0.0) {
    p = std::min(0.9, p * rng_.LogNormal(0.0,
                                         options_.unfamiliar_row_log_sigma));
  }
  row_unfamiliar_prob_.emplace(row, p);
  return p;
}

double CrowdSimulator::RowFactor(WorkerId u, int row) {
  if (options_.unfamiliar_prob <= 0.0) return 1.0;
  int64_t key = static_cast<int64_t>(u) * truth_->num_rows() + row;
  auto it = row_factors_.find(key);
  if (it != row_factors_.end()) return it->second;
  double factor = rng_.Bernoulli(RowUnfamiliarProb(row))
                      ? options_.unfamiliar_boost *
                            rng_.LogNormal(0.0, 0.25)
                      : 1.0;
  row_factors_.emplace(key, factor);
  return factor;
}

double CrowdSimulator::RowBias(WorkerId u, int row) {
  int64_t key = static_cast<int64_t>(u) * truth_->num_rows() + row;
  auto it = row_bias_.find(key);
  if (it != row_bias_.end()) return it->second;
  double bias = rng_.Gaussian(0.0, 1.0);
  row_bias_.emplace(key, bias);
  return bias;
}

Value CrowdSimulator::Answer(WorkerId u, CellRef cell) {
  const ColumnSpec& col = schema_->column(cell.col);
  AnswerDraw draw;
  draw.row_difficulty = row_difficulty_[cell.row];
  draw.col_difficulty = col_difficulty_[cell.col];
  draw.row_factor = RowFactor(u, cell.row);
  draw.col_scale = col_scale_[cell.col];
  draw.epsilon = options_.epsilon;
  if (options_.row_bias_rho > 0.0 && col.type == ColumnType::kContinuous) {
    draw.bias_rho = options_.row_bias_rho;
    draw.shared_bias = RowBias(u, cell.row);
  }
  return GenerateAnswer(worker(u), col, truth_->at(cell), draw, &rng_);
}

uint64_t CrowdSimulator::PairSeed(uint64_t tag, WorkerId u, int row) const {
  uint64_t key = (static_cast<uint64_t>(static_cast<uint32_t>(u)) << 32) |
                 static_cast<uint32_t>(row);
  return Mix64(pair_seed_ ^ Mix64(key + tag * 0x9e3779b97f4a7c15ull));
}

double CrowdSimulator::RowUnfamiliarProbAt(int row) const {
  double p = options_.unfamiliar_prob;
  if (options_.unfamiliar_row_log_sigma > 0.0) {
    Rng r(PairSeed(/*tag=*/1, /*u=*/-1, row));
    p = std::min(0.9, p * r.LogNormal(0.0, options_.unfamiliar_row_log_sigma));
  }
  return p;
}

double CrowdSimulator::RowFactorAt(WorkerId u, int row) const {
  if (options_.unfamiliar_prob <= 0.0) return 1.0;
  Rng r(PairSeed(/*tag=*/2, u, row));
  if (!r.Bernoulli(RowUnfamiliarProbAt(row))) return 1.0;
  return options_.unfamiliar_boost * r.LogNormal(0.0, 0.25);
}

double CrowdSimulator::RowBiasAt(WorkerId u, int row) const {
  Rng r(PairSeed(/*tag=*/3, u, row));
  return r.Gaussian(0.0, 1.0);
}

Value CrowdSimulator::AnswerWith(WorkerId u, CellRef cell, Rng* rng,
                                 double noise_boost) const {
  const ColumnSpec& col = schema_->column(cell.col);
  WorkerProfile profile = worker(u);
  profile.phi *= noise_boost;
  AnswerDraw draw;
  draw.row_difficulty = row_difficulty_[cell.row];
  draw.col_difficulty = col_difficulty_[cell.col];
  draw.row_factor = RowFactorAt(u, cell.row);
  draw.col_scale = col_scale_[cell.col];
  draw.epsilon = options_.epsilon;
  if (options_.row_bias_rho > 0.0 && col.type == ColumnType::kContinuous) {
    draw.bias_rho = options_.row_bias_rho;
    draw.shared_bias = RowBiasAt(u, cell.row);
  }
  return GenerateAnswer(profile, col, truth_->at(cell), draw, rng);
}

WorkerId CrowdSimulator::NextWorker(Rng* rng) const {
  return static_cast<WorkerId>(rng->Categorical(arrival_weights_));
}

void CrowdSimulator::SeedAnswers(int k, AnswerSet* answers) {
  TCROWD_CHECK(k <= num_workers())
      << "cannot seed " << k << " distinct answers with " << num_workers()
      << " workers";
  for (int i = 0; i < truth_->num_rows(); ++i) {
    // k distinct workers per row, sampled by participation weight.
    std::vector<WorkerId> chosen;
    while (static_cast<int>(chosen.size()) < k) {
      WorkerId w = NextWorker();
      if (std::find(chosen.begin(), chosen.end(), w) == chosen.end()) {
        chosen.push_back(w);
      }
    }
    for (WorkerId w : chosen) {
      for (int j = 0; j < schema_->num_columns(); ++j) {
        CellRef cell{i, j};
        answers->Add(w, cell, Answer(w, cell));
      }
    }
  }
}

}  // namespace tcrowd::sim
