#ifndef TCROWD_SIMULATION_DATASET_SYNTHESIZER_H_
#define TCROWD_SIMULATION_DATASET_SYNTHESIZER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "data/dataset.h"
#include "simulation/crowd_simulator.h"
#include "simulation/table_generator.h"

namespace tcrowd::sim {

/// Which of the paper's three real-world AMT datasets to imitate. The real
/// answer logs are not redistributable, so we synthesize datasets with the
/// same shapes (rows, columns, types, answers-per-task; paper Table 6) and
/// the same causal structure (long-tail worker quality, row/column
/// difficulties, row-recognition error correlation). See DESIGN.md §2.
enum class PaperDataset {
  kCelebrity,   ///< 174 rows x 7 cols (3 cat + 4 cont), 5 answers/task
  kRestaurant,  ///< 203 rows x 5 cols (3 cat + 2 cont), 4 answers/task
  kEmotion,     ///< 100 rows x 7 cols (all cont),       10 answers/task
};

const char* PaperDatasetName(PaperDataset which);
/// Paper Table 6: answers collected per task.
int PaperAnswersPerTask(PaperDataset which);

/// A synthesized world: the dataset (schema + truth + seeded answers), plus
/// the live simulator so assignment experiments can keep collecting answers
/// from the same hidden worker pool.
///
/// CAUTION: `crowd` points back into `dataset` (schema and truth), so a
/// SynthesizedWorld must be constructed in place (copy elision) and never
/// moved afterwards — `auto world = SynthesizeDataset(...)` is safe,
/// `world = SynthesizeDataset(...)` onto an existing variable is not.
struct SynthesizedWorld {
  Dataset dataset;
  std::unique_ptr<CrowdSimulator> crowd;
  std::vector<double> row_difficulty;
  std::vector<double> col_difficulty;
};

struct SynthesizerOptions {
  uint64_t seed = 42;
  /// If >= 0, overrides the dataset's default answers-per-task seeding.
  /// Use 0 to get an empty answer set (assignment experiments seed later).
  int answers_per_task = -1;
  /// Override of the crowd configuration; nullptr = dataset default.
  const CrowdOptions* crowd_override = nullptr;
};

/// Builds a statistically matched stand-in for one of the paper's datasets.
SynthesizedWorld SynthesizeDataset(PaperDataset which,
                                   const SynthesizerOptions& options);

/// Builds a world around an arbitrary generated table (Section 6.5.1
/// experiments): worker pool + seeded answers.
SynthesizedWorld SynthesizeFromTable(GeneratedTable table,
                                     const CrowdOptions& crowd_options,
                                     int answers_per_task, uint64_t seed,
                                     std::string name = "synthetic");

}  // namespace tcrowd::sim

#endif  // TCROWD_SIMULATION_DATASET_SYNTHESIZER_H_
