#ifndef TCROWD_SIMULATION_WORKER_BEHAVIOR_H_
#define TCROWD_SIMULATION_WORKER_BEHAVIOR_H_

#include <memory>
#include <string>

#include "common/rng.h"
#include "data/value.h"
#include "simulation/crowd_simulator.h"

namespace tcrowd::sim {

/// Everything a behavior may look at when producing one answer.
struct BehaviorContext {
  const CrowdSimulator* crowd = nullptr;
  WorkerId worker = -1;
  CellRef cell;
  /// Fraction of the run's answer budget already spent, in [0,1] — the
  /// "time" axis that ramping/sleeper behaviors key off. Monotone
  /// non-decreasing over a run (retraction refunds clamp, never rewind it).
  double progress = 0.0;
  /// The caller's deterministic noise stream for this arrival.
  Rng* rng = nullptr;
};

/// How a simulated worker turns an assigned cell into an answer value. The
/// honest implementation is exactly the paper's generative model
/// (CrowdSimulator::AnswerWith); adversarial implementations replace or
/// degrade it for a deterministic subset of the worker pool. Behaviors are
/// stateless and const — every latent decision (who is in the clique, when
/// a sleeper turns) derives from stable hashes and `progress`, so replays
/// with the same seed are bit-identical regardless of threading.
class WorkerBehavior {
 public:
  virtual ~WorkerBehavior() = default;
  virtual std::string name() const = 0;
  virtual Value Produce(const BehaviorContext& ctx) const = 0;
};

/// Stable membership test for adversarial cliques: hashes (salt, worker)
/// into [0,1) and compares against `fraction`. The same (salt, fraction)
/// always selects the same subset of the pool, so behaviors and arrival
/// models can agree on who the adversaries are.
bool InClique(uint64_t salt, WorkerId worker, double fraction);

/// Salts of the built-in adversarial subsets, distinct so the crews are
/// independent of each other; exposed so arrival models (and tests) can
/// target exactly the workers a behavior corrupts.
inline constexpr uint64_t kSpamCliqueSalt = 0x5350414dull;       // "SPAM"
inline constexpr uint64_t kCollusionCliqueSalt = 0x434f4c4cull;  // "COLL"
inline constexpr uint64_t kDriftCliqueSalt = 0x44524654ull;      // "DRFT"
inline constexpr uint64_t kSleeperCliqueSalt = 0x534c5052ull;    // "SLPR"

/// The colluders' shared oracle: a deterministic plausible-but-wrong value
/// for `cell`, identical for every clique member — a wrong label for
/// categorical columns, a several-sigma shift for continuous ones. This is
/// the worst case for frequency-based aggregation: the wrong answers agree
/// with each other.
Value WrongAnswerOracle(const CrowdSimulator& crowd, CellRef cell);

/// Honest crowd: the paper's generative model, unmodified.
std::unique_ptr<WorkerBehavior> MakeHonestBehavior();

/// `spam_fraction` of the pool answers uniformly at random (labels uniform
/// over the domain, numbers uniform over the column range); everyone else
/// is honest.
std::unique_ptr<WorkerBehavior> MakeSpammerBehavior(double spam_fraction);

/// `clique_fraction` of the pool emits the shared WrongAnswerOracle value;
/// everyone else is honest.
std::unique_ptr<WorkerBehavior> MakeCollusionBehavior(double clique_fraction);

/// `drift_fraction` of the pool degrades linearly with progress: their
/// effective variance is boosted by 1 at progress 0 up to `end_noise_boost`
/// at progress 1 (the new-worker-gets-bored ramp); everyone else is honest.
std::unique_ptr<WorkerBehavior> MakeDriftBehavior(double end_noise_boost,
                                                  double drift_fraction);

/// `sleeper_fraction` of the pool answers honestly until progress reaches
/// `turn_at`, then switches to the collusion oracle — reputation built
/// early, spent late (the hardest case for quality models that never
/// forget).
std::unique_ptr<WorkerBehavior> MakeSleeperBehavior(double sleeper_fraction,
                                                    double turn_at);

}  // namespace tcrowd::sim

#endif  // TCROWD_SIMULATION_WORKER_BEHAVIOR_H_
