#ifndef TCROWD_SIMULATION_CROWD_SIMULATOR_H_
#define TCROWD_SIMULATION_CROWD_SIMULATOR_H_

#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "data/answer.h"
#include "data/table.h"
#include "simulation/worker_model.h"

namespace tcrowd::sim {

/// Configuration of the simulated worker pool.
struct CrowdOptions {
  int num_workers = 40;
  /// Worker variances phi_u follow LogNormal(log(phi_median), phi_log_sigma)
  /// — a long-tail quality distribution, matching the paper's remark that
  /// crowdsourced answers exhibit long-tail behaviour.
  double phi_median = 0.35;
  double phi_log_sigma = 0.7;
  /// Row-recognition model: with probability `unfamiliar_prob` (modulated
  /// per row, see `unfamiliar_row_log_sigma`), a worker does not
  /// "recognize" an entity and ALL answers in that row get their variance
  /// multiplied by `unfamiliar_boost` (the paper's Jet Li example: a worker
  /// who cannot name the celebrity is unreliable on every attribute of that
  /// row). Set unfamiliar_prob = 0 to disable correlation.
  double unfamiliar_prob = 0.3;
  double unfamiliar_boost = 8.0;
  /// Spread of the per-ROW unfamiliarity: each row's probability is
  /// unfamiliar_prob * LogNormal(0, this), capped at 0.9 — obscure entities
  /// are obscure for *everyone*, which is exactly what the model's row
  /// difficulty alpha_i captures. 0 disables per-row variation.
  double unfamiliar_row_log_sigma = 0.8;
  /// Signed-error correlation of a worker's continuous answers within one
  /// row (see AnswerDraw::bias_rho); two answers correlate by rho^2.
  double row_bias_rho = 0.5;
  /// Worker participation is skewed: arrival weights ~ U(0,1)^zipf_skew.
  /// 0 = uniform participation.
  double participation_skew = 1.5;
  /// Quality-interval epsilon used for categorical generation (must match
  /// the inference side's epsilon for calibration studies).
  double epsilon = 0.5;
};

/// Simulates a crowd of workers over a fixed ground-truth world. Produces
/// answers from the paper's generative model and provides the worker
/// arrival stream that drives task-assignment experiments.
class CrowdSimulator {
 public:
  /// `row_difficulty`/`col_difficulty` are the hidden alpha/beta of the
  /// world (pass vectors of 1.0 for a difficulty-free world). `col_scale`
  /// maps standardized noise into each continuous column's units; a common
  /// choice is (max-min)/6 so +-3 sigma of a phi=1 worker spans the domain.
  CrowdSimulator(const CrowdOptions& options, const Schema& schema,
                 const Table& truth, std::vector<double> row_difficulty,
                 std::vector<double> col_difficulty,
                 std::vector<double> col_scale, Rng rng);

  /// Convenience: neutral difficulties and domain-derived column scales.
  CrowdSimulator(const CrowdOptions& options, const Schema& schema,
                 const Table& truth, Rng rng);

  int num_workers() const { return static_cast<int>(workers_.size()); }
  const WorkerProfile& worker(WorkerId id) const;
  /// Ground-truth quality q_u of a worker (for calibration studies).
  double TrueQuality(WorkerId id) const;

  /// Next arriving worker, drawn from the skewed participation weights.
  WorkerId NextWorker();

  /// Generates (and returns) worker `u`'s answer for `cell`.
  Value Answer(WorkerId u, CellRef cell);

  /// Order-independent variant of Answer(): identical generative model, but
  /// every per-(worker,row) latent (recognition factor, shared bias, row
  /// unfamiliarity) is derived from a stable hash of (simulator seed,
  /// worker, row) instead of being drawn lazily from the shared stream, and
  /// the fresh noise comes from the caller's `rng`. Two calls with the same
  /// arguments and rng state produce the same answer no matter what ran in
  /// between — the property the deterministic LoadGenerator mode and the
  /// scenario runner are built on. `noise_boost` multiplies the worker's
  /// variance phi (> 1 degrades quality; used by drifting/sleeper
  /// behaviors). Const and stateless: safe from concurrent threads.
  Value AnswerWith(WorkerId u, CellRef cell, Rng* rng,
                   double noise_boost = 1.0) const;

  /// Order-independent arrival draw from the caller's stream (same skewed
  /// participation weights as NextWorker()).
  WorkerId NextWorker(Rng* rng) const;

  const Schema& schema() const { return *schema_; }
  const Table& truth() const { return *truth_; }

  /// Seeds `answers` with `k` answers per cell, HIT-style: for every row,
  /// `k` distinct workers each answer the whole row.
  void SeedAnswers(int k, AnswerSet* answers);

  const std::vector<double>& row_difficulty() const { return row_difficulty_; }
  const std::vector<double>& col_difficulty() const { return col_difficulty_; }
  const std::vector<double>& col_scale() const { return col_scale_; }
  double epsilon() const { return options_.epsilon; }

  /// Derives the default per-column scale from a schema: (max-min)/6 for
  /// continuous columns, 1 for categorical.
  static std::vector<double> DefaultColumnScales(const Schema& schema);

 private:
  double RowFactor(WorkerId u, int row);

  CrowdOptions options_;
  const Schema* schema_;
  const Table* truth_;
  std::vector<double> row_difficulty_;
  std::vector<double> col_difficulty_;
  std::vector<double> col_scale_;
  Rng rng_;
  std::vector<WorkerProfile> workers_;
  std::vector<double> arrival_weights_;
  /// Memoized per-(worker,row) recognition factors so the same pair always
  /// behaves consistently — this is what correlates errors within a row.
  std::unordered_map<int64_t, double> row_factors_;
  /// Memoized per-row unfamiliarity probabilities.
  std::unordered_map<int, double> row_unfamiliar_prob_;
  /// Memoized per-(worker,row) shared bias draws for continuous answers.
  std::unordered_map<int64_t, double> row_bias_;

  double RowUnfamiliarProb(int row);
  double RowBias(WorkerId u, int row);

  /// Stable seed for the order-independent latents of AnswerWith(): mixes
  /// the simulator salt with (tag, worker, row).
  uint64_t PairSeed(uint64_t tag, WorkerId u, int row) const;
  double RowFactorAt(WorkerId u, int row) const;
  double RowUnfamiliarProbAt(int row) const;
  double RowBiasAt(WorkerId u, int row) const;

  /// Per-simulator salt for AnswerWith(), peeked from rng_ at construction
  /// without consuming from it (the lazy Answer() stream stays untouched).
  uint64_t pair_seed_ = 0;
};

}  // namespace tcrowd::sim

#endif  // TCROWD_SIMULATION_CROWD_SIMULATOR_H_
