#include "simulation/dataset_synthesizer.h"

#include <utility>

#include "common/logging.h"
#include "common/string_util.h"

namespace tcrowd::sim {

const char* PaperDatasetName(PaperDataset which) {
  switch (which) {
    case PaperDataset::kCelebrity:
      return "Celebrity";
    case PaperDataset::kRestaurant:
      return "Restaurant";
    case PaperDataset::kEmotion:
      return "Emotion";
  }
  return "?";
}

int PaperAnswersPerTask(PaperDataset which) {
  switch (which) {
    case PaperDataset::kCelebrity:
      return 5;
    case PaperDataset::kRestaurant:
      return 4;
    case PaperDataset::kEmotion:
      return 10;
  }
  return 0;
}

namespace {

std::vector<std::string> NumberedLabels(const char* prefix, int count) {
  std::vector<std::string> labels;
  labels.reserve(count);
  for (int l = 0; l < count; ++l) {
    labels.push_back(StrFormat("%s%d", prefix, l));
  }
  return labels;
}

/// Schema mirrors of the paper's Table 6 datasets (Section 6.1).
Schema CelebritySchema() {
  return Schema({
      // Name is a high-cardinality categorical (workers pick the celebrity).
      Schema::MakeCategorical("name", NumberedLabels("person_", 50)),
      Schema::MakeCategorical("nationality", NumberedLabels("country_", 20)),
      Schema::MakeCategorical("ethnicity", NumberedLabels("eth_", 8)),
      Schema::MakeContinuous("age", 10.0, 90.0),
      Schema::MakeContinuous("height", 140.0, 210.0),
      Schema::MakeContinuous("notability", 0.0, 100.0),
      Schema::MakeContinuous("facial", 0.0, 100.0),
  });
}

Schema RestaurantSchema() {
  return Schema({
      Schema::MakeCategorical("aspect", NumberedLabels("aspect_", 6)),
      Schema::MakeCategorical("attribute", NumberedLabels("attr_", 5)),
      Schema::MakeCategorical(
          "sentiment", {"negative", "neutral", "positive"}),
      Schema::MakeContinuous("start_target", 0.0, 200.0),
      Schema::MakeContinuous("end_target", 0.0, 220.0),
  });
}

Schema EmotionSchema() {
  std::vector<ColumnSpec> cols;
  for (const char* name :
       {"anger", "disgust", "fear", "joy", "sadness", "surprise"}) {
    cols.push_back(Schema::MakeContinuous(name, 0.0, 100.0));
  }
  cols.push_back(Schema::MakeContinuous("valence", -100.0, 100.0));
  return Schema(std::move(cols));
}

struct DatasetRecipe {
  Schema schema;
  int num_rows = 0;
  CrowdOptions crowd;
  /// Extra column difficulty multiplier for continuous columns. Real AMT
  /// workers are precise on multiple-choice questions but sloppy on free
  /// numeric estimates (age/height guesses); boosting beta_j of continuous
  /// columns reproduces the paper's regime (error rate ~0.05-0.2 while
  /// MNAD sits near 0.6).
  double continuous_difficulty_boost = 1.0;
};

DatasetRecipe RecipeFor(PaperDataset which) {
  DatasetRecipe recipe;
  switch (which) {
    case PaperDataset::kCelebrity:
      recipe.schema = CelebritySchema();
      recipe.num_rows = 174;
      recipe.crowd.num_workers = 60;
      recipe.crowd.phi_median = 0.12;
      recipe.crowd.phi_log_sigma = 0.9;
      recipe.crowd.unfamiliar_prob = 0.20;  // "doesn't recognize" the star
      recipe.crowd.unfamiliar_boost = 6.0;
      recipe.continuous_difficulty_boost = 8.0;
      break;
    case PaperDataset::kRestaurant:
      recipe.schema = RestaurantSchema();
      recipe.num_rows = 203;
      recipe.crowd.num_workers = 40;
      recipe.crowd.phi_median = 0.30;
      recipe.crowd.phi_log_sigma = 0.8;
      recipe.crowd.unfamiliar_prob = 0.20;  // review misread end-to-end
      recipe.crowd.unfamiliar_boost = 5.0;
      recipe.continuous_difficulty_boost = 6.0;
      break;
    case PaperDataset::kEmotion:
      recipe.schema = EmotionSchema();
      recipe.num_rows = 100;
      recipe.crowd.num_workers = 38;  // Snow et al. pool size
      recipe.crowd.phi_median = 2.5;  // emotion scores are highly subjective
      recipe.crowd.phi_log_sigma = 0.6;
      recipe.crowd.unfamiliar_prob = 0.20;
      recipe.crowd.unfamiliar_boost = 3.0;
      break;
  }
  return recipe;
}

/// Log-normal row/column difficulties with geometric mean 1.
std::vector<double> DrawDifficulties(int n, double log_sigma, Rng* rng) {
  std::vector<double> out(n);
  for (double& d : out) d = rng->LogNormal(0.0, log_sigma);
  return out;
}

}  // namespace

SynthesizedWorld SynthesizeFromTable(GeneratedTable table,
                                     const CrowdOptions& crowd_options,
                                     int answers_per_task, uint64_t seed,
                                     std::string name) {
  SynthesizedWorld world;
  world.dataset.name = std::move(name);
  world.dataset.schema = table.schema;
  world.dataset.truth = std::move(table.truth);
  world.row_difficulty = std::move(table.row_difficulty);
  world.col_difficulty = std::move(table.col_difficulty);
  world.dataset.answers = AnswerSet(world.dataset.truth.num_rows(),
                                    world.dataset.schema.num_columns());
  world.crowd = std::make_unique<CrowdSimulator>(
      crowd_options, world.dataset.schema, world.dataset.truth,
      world.row_difficulty, world.col_difficulty,
      CrowdSimulator::DefaultColumnScales(world.dataset.schema), Rng(seed));
  if (answers_per_task > 0) {
    world.crowd->SeedAnswers(answers_per_task, &world.dataset.answers);
  }
  return world;
}

SynthesizedWorld SynthesizeDataset(PaperDataset which,
                                   const SynthesizerOptions& options) {
  DatasetRecipe recipe = RecipeFor(which);
  if (options.crowd_override != nullptr) {
    recipe.crowd = *options.crowd_override;
  }
  Rng rng(options.seed);

  GeneratedTable table;
  table.schema = recipe.schema;
  table.truth = Table(recipe.schema, recipe.num_rows);
  for (int i = 0; i < recipe.num_rows; ++i) {
    for (int j = 0; j < recipe.schema.num_columns(); ++j) {
      const ColumnSpec& col = recipe.schema.column(j);
      if (col.type == ColumnType::kCategorical) {
        table.truth.Set(
            i, j, Value::Categorical(rng.UniformInt(0, col.num_labels() - 1)));
      } else {
        table.truth.Set(
            i, j, Value::Continuous(rng.Uniform(col.min_value, col.max_value)));
      }
    }
  }
  table.row_difficulty = DrawDifficulties(recipe.num_rows, 0.3, &rng);
  table.col_difficulty =
      DrawDifficulties(recipe.schema.num_columns(), 0.3, &rng);
  for (int j : recipe.schema.ContinuousColumns()) {
    table.col_difficulty[j] *= recipe.continuous_difficulty_boost;
  }

  int apt = options.answers_per_task >= 0 ? options.answers_per_task
                                          : PaperAnswersPerTask(which);
  return SynthesizeFromTable(std::move(table), recipe.crowd, apt, rng.Fork()
                                 .engine()(),
                             PaperDatasetName(which));
}

}  // namespace tcrowd::sim
