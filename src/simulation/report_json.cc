#include "simulation/report_json.h"

#include <cmath>
#include <cstdio>

#include "common/string_util.h"

namespace tcrowd::sim {
namespace {

std::string JsonNumberOrNull(double v) {
  if (std::isnan(v) || std::isinf(v)) return "null";
  return StrFormat("%.6g", v);
}

/// Minimal string escaping — report strings are scenario/policy names, but
/// a quote or backslash must still never produce invalid JSON.
std::string JsonString(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  out += "\"";
  return out;
}

std::string StatsJson(const service::ServiceStats& s) {
  return StrFormat(
      "{\"tasks_open\": %d, \"tasks_assigned\": %d, \"tasks_answered\": %d, "
      "\"tasks_finalized\": %d, \"sessions_started\": %lld, "
      "\"sessions_expired\": %lld, \"answers_accepted\": %lld, "
      "\"answers_rejected\": %lld, \"answers_retracted\": %lld, "
      "\"answers_restored\": %lld, \"budget_spent\": %lld, "
      "\"budget_remaining\": %lld, \"engine_refreshes\": %d}",
      s.tasks_open, s.tasks_assigned, s.tasks_answered, s.tasks_finalized,
      static_cast<long long>(s.sessions_started),
      static_cast<long long>(s.sessions_expired),
      static_cast<long long>(s.answers_accepted),
      static_cast<long long>(s.answers_rejected),
      static_cast<long long>(s.answers_retracted),
      static_cast<long long>(s.answers_restored),
      static_cast<long long>(s.budget_spent),
      static_cast<long long>(s.budget_remaining), s.engine_refreshes);
}

}  // namespace

std::string FormatLoadReportJson(const LoadReport& report,
                                 double final_error_rate,
                                 double final_mnad) {
  std::string out = "{\n";
  out += "  \"kind\": \"load\",\n";
  out += StrFormat(
      "  \"arrivals\": %lld,\n  \"assignments\": %lld,\n"
      "  \"answers\": %lld,\n  \"rejected\": %lld,\n"
      "  \"abandoned_sessions\": %lld,\n  \"batches\": %lld,\n"
      "  \"stopped_early\": %s,\n  \"wall_seconds\": %.6f,\n"
      "  \"answers_per_second\": %.3f,\n",
      static_cast<long long>(report.arrivals),
      static_cast<long long>(report.assignments),
      static_cast<long long>(report.answers),
      static_cast<long long>(report.rejected),
      static_cast<long long>(report.abandoned_sessions),
      static_cast<long long>(report.batches),
      report.stopped_early ? "true" : "false", report.wall_seconds,
      report.answers_per_second);
  out += StrFormat("  \"final_error_rate\": %s,\n  \"final_mnad\": %s,\n",
                   JsonNumberOrNull(final_error_rate).c_str(),
                   JsonNumberOrNull(final_mnad).c_str());
  out += "  \"final_stats\": " + StatsJson(report.final_stats) + "\n";
  out += "}\n";
  return out;
}

std::string FormatScenarioReportJson(const ScenarioReport& report,
                                     double final_error_rate,
                                     double final_mnad) {
  std::string out = "{\n";
  out += "  \"kind\": \"scenario\",\n";
  out += "  \"scenario\": " + JsonString(report.scenario) + ",\n";
  out += StrFormat(
      "  \"arrivals\": %lld,\n  \"answers_accepted\": %lld,\n"
      "  \"answers_retracted\": %lld,\n  \"rejected\": %lld,\n"
      "  \"retraction_misses\": %lld,\n  \"stopped_early\": %s,\n",
      static_cast<long long>(report.arrivals),
      static_cast<long long>(report.answers_accepted),
      static_cast<long long>(report.answers_retracted),
      static_cast<long long>(report.rejected),
      static_cast<long long>(report.retraction_misses),
      report.stopped_early ? "true" : "false");
  out += "  \"curve\": [";
  for (size_t i = 0; i < report.curve.size(); ++i) {
    const QualityPoint& p = report.curve[i];
    out += StrFormat(
        "%s\n    {\"budget\": %lld, \"tcrowd_error_rate\": %s, "
        "\"tcrowd_mnad\": %s, \"mv_error_rate\": %s, \"mv_mnad\": %s}",
        i == 0 ? "" : ",", static_cast<long long>(p.budget),
        JsonNumberOrNull(p.tcrowd_error_rate).c_str(),
        JsonNumberOrNull(p.tcrowd_mnad).c_str(),
        JsonNumberOrNull(p.mv_error_rate).c_str(),
        JsonNumberOrNull(p.mv_mnad).c_str());
  }
  out += report.curve.empty() ? "],\n" : "\n  ],\n";
  out += StrFormat("  \"final_error_rate\": %s,\n  \"final_mnad\": %s,\n",
                   JsonNumberOrNull(final_error_rate).c_str(),
                   JsonNumberOrNull(final_mnad).c_str());
  out += "  \"final_stats\": " + StatsJson(report.final_stats) + "\n";
  out += "}\n";
  return out;
}

Status WriteReportJson(const std::string& path, const std::string& json) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError(StrFormat("cannot open %s", tmp.c_str()));
  }
  const bool wrote =
      std::fwrite(json.data(), 1, json.size(), f) == json.size() &&
      std::fflush(f) == 0;
  if (std::fclose(f) != 0 || !wrote) {
    std::remove(tmp.c_str());
    return Status::IoError(StrFormat("cannot write %s", tmp.c_str()));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError(
        StrFormat("cannot publish %s", path.c_str()));
  }
  return Status::Ok();
}

}  // namespace tcrowd::sim
