#ifndef TCROWD_SIMULATION_WORKER_MODEL_H_
#define TCROWD_SIMULATION_WORKER_MODEL_H_

#include "common/rng.h"
#include "data/answer.h"
#include "data/schema.h"
#include "data/value.h"

namespace tcrowd::sim {

/// Ground-truth parameters of one simulated worker. Answers are generated
/// from exactly the paper's model (Eq. 1 and Eq. 3): the effective variance
/// of an answer to cell (i,j) is alpha_i * beta_j * phi * row_factor, where
/// `row_factor` is an optional per-(worker,row) recognition multiplier that
/// induces the row-wise error correlation the paper observes in real data.
struct WorkerProfile {
  WorkerId id = 0;
  /// Inherent answer variance phi_u in standardized units (lower = better).
  double phi = 0.5;
};

/// Parameters of one answer draw.
struct AnswerDraw {
  double row_difficulty = 1.0;   ///< alpha_i
  double col_difficulty = 1.0;   ///< beta_j
  double row_factor = 1.0;       ///< recognition multiplier (>= 1)
  /// Scale of the column used to map standardized noise into value units
  /// (continuous columns only).
  double col_scale = 1.0;
  /// epsilon of the quality mapping q = erf(eps / sqrt(2 var)).
  double epsilon = 0.5;
  /// Shared-bias model for continuous answers: the standardized error is
  /// bias_rho * shared_bias + sqrt(1 - bias_rho^2) * fresh_noise, so two
  /// continuous answers by the same worker in the same row (same
  /// shared_bias draw) have signed-error correlation bias_rho^2 while the
  /// marginal variance stays exactly the paper's alpha*beta*phi. Models a
  /// worker misreading the entity and shifting every estimate the same way.
  double shared_bias = 0.0;  ///< a N(0,1) draw shared across the row
  double bias_rho = 0.0;     ///< in [0,1); 0 disables the shared component
};

/// The worker's ground-truth quality q_u = erf(eps / sqrt(2 phi)) (Eq. 2).
double TrueWorkerQuality(const WorkerProfile& worker, double epsilon);

/// Generates a worker's answer for a cell with the given ground truth.
/// Continuous: truth + col_scale * N(0, effective variance).
/// Categorical: correct with probability erf(eps/sqrt(2 * effective var)),
/// otherwise uniform over the remaining labels.
Value GenerateAnswer(const WorkerProfile& worker, const ColumnSpec& column,
                     const Value& truth, const AnswerDraw& draw, Rng* rng);

}  // namespace tcrowd::sim

#endif  // TCROWD_SIMULATION_WORKER_MODEL_H_
