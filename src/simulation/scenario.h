#ifndef TCROWD_SIMULATION_SCENARIO_H_
#define TCROWD_SIMULATION_SCENARIO_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "service/crowd_service.h"
#include "simulation/arrival_model.h"
#include "simulation/crowd_simulator.h"
#include "simulation/worker_behavior.h"

namespace tcrowd::sim {

/// One named adversarial/dynamic scenario: a worker behavior composed with
/// an arrival model, plus the retraction pressure the run applies. Specs
/// are value types (behaviors/arrivals are shared immutable singletons) so
/// the registry can hand out copies.
struct ScenarioSpec {
  std::string name;
  std::string description;
  std::shared_ptr<const WorkerBehavior> behavior;
  std::shared_ptr<const ArrivalModel> arrivals;
  /// Probability an accepted answer is later disavowed through
  /// CrowdService::RetractAnswer.
  double retract_prob = 0.0;
  /// How many accepted answers later the disavowal lands (the retraction
  /// exercises the tombstone path only if the answer had time to be sealed
  /// or fitted over).
  int retract_delay = 24;
};

/// One point of the quality-vs-budget curve: both aggregators evaluated
/// against ground truth after `budget` answers were spent (net of
/// retraction refunds).
struct QualityPoint {
  int64_t budget = 0;
  double tcrowd_error_rate = 0.0;
  double tcrowd_mnad = 0.0;
  double mv_error_rate = 0.0;
  double mv_mnad = 0.0;
};

struct ScenarioOptions {
  /// Curve resolution: quality is measured at this many evenly spaced
  /// budget checkpoints (plus wherever the run actually stops).
  int checkpoints = 8;
  /// Tasks leased per arriving worker.
  int tasks_per_request = 6;
  /// Arrival hard stop (the run normally ends when the service drains).
  int64_t max_arrivals = 1000000;
  /// Crash drill: > 0 stops the run once this many answers were accepted
  /// (gross, before retraction refunds), leaving the service mid-flight.
  int64_t stop_after_answers = 0;
  uint64_t seed = 17;
};

struct ScenarioReport {
  std::string scenario;
  int64_t arrivals = 0;
  /// Gross accepted answers (retracted ones included).
  int64_t answers_accepted = 0;
  int64_t answers_retracted = 0;
  int64_t rejected = 0;
  /// Scheduled retractions that found no live answer (the cell was
  /// re-answered and re-retracted in between); diagnostics only.
  int64_t retraction_misses = 0;
  bool stopped_early = false;
  std::vector<QualityPoint> curve;
  service::ServiceStats final_stats;
};

/// Replays one scenario against a CrowdService, single-threaded and
/// deterministic (one seeded stream drives arrivals, behaviors, and
/// retraction sampling), recording the TCrowd-vs-MajorityVoting
/// quality-vs-budget curve at evenly spaced budget checkpoints. Both
/// aggregators are evaluated as full batch fits over the engine's live
/// answer snapshot, so the curve compares methods, not refresh schedules.
class ScenarioRunner {
 public:
  /// All pointers unowned; `crowd`'s truth table supplies ground truth for
  /// the curve only — neither aggregator ever sees it.
  ScenarioRunner(ScenarioSpec spec, const CrowdSimulator* crowd,
                 service::CrowdService* service, ScenarioOptions options);

  /// Drives the service until it drains (or hits max_arrivals /
  /// stop_after_answers). May be called once per runner.
  ScenarioReport Run();

 private:
  ScenarioSpec spec_;
  const CrowdSimulator* const crowd_;
  service::CrowdService* const service_;
  ScenarioOptions options_;
};

/// Names of every registered scenario, registry order.
std::vector<std::string> ScenarioNames();
/// Looks a scenario up by name; false (and *spec untouched) when unknown.
bool FindScenario(const std::string& name, ScenarioSpec* spec);

/// The curve as CSV ("scenario,budget,tcrowd_error_rate,tcrowd_mnad,
/// mv_error_rate,mv_mnad" header + one row per point).
std::string FormatQualityCurveCsv(const ScenarioReport& report);

}  // namespace tcrowd::sim

#endif  // TCROWD_SIMULATION_SCENARIO_H_
