#include "simulation/load_generator.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "inference/segment_codec.h"
#include "net/client.h"
#include "net/socket_util.h"

namespace tcrowd::sim {

namespace {
/// SplitMix64 finalizer; derives the per-arrival session streams.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}
}  // namespace

LoadGenerator::LoadGenerator(CrowdSimulator* crowd,
                             service::ServingBackend* svc,
                             LoadGeneratorOptions options)
    : crowd_(crowd), service_(svc), options_(options) {
  TCROWD_CHECK(crowd_ != nullptr);
  TCROWD_CHECK(service_ != nullptr || !options_.connect.empty());
  options_.max_arrivals = std::max(1, options_.max_arrivals);
  options_.tasks_per_request = std::max(1, options_.tasks_per_request);
  options_.batch_size = std::max(1, options_.batch_size);
  options_.num_driver_threads = std::max(1, options_.num_driver_threads);
  options_.num_connections = std::max(1, options_.num_connections);
}

void LoadGenerator::RunSocket(LoadReport* report) {
  std::string host;
  uint16_t port = 0;
  Status st = net::ParseHostPort(options_.connect, &host, &port);
  if (!st.ok()) {
    report->socket_status = st;
    return;
  }
  std::vector<net::Client> clients(
      static_cast<size_t>(options_.num_connections));
  for (net::Client& client : clients) {
    st = client.Connect(host, port);
    if (!st.ok()) {
      report->socket_status = st;
      return;
    }
  }
  const uint64_t local_fingerprint =
      SchemaFingerprint(crowd_->schema(), crowd_->truth().num_rows());

  // Mirrors RunArrivalDeterministic frame for frame: same (seed, index)
  // streams, same order-independent simulator calls, same per-arrival call
  // shape (Hello ≡ StartSession, Lease ≡ RequestTasks, SubmitBatch pages,
  // Bye ≡ EndSession) — the server's single-threaded loop then books the
  // identical history the in-process run would have.
  bool drained = false;
  while (!drained) {
    if (StopRequested()) break;
    if (arrivals_issued_ >= options_.max_arrivals) break;
    int64_t index = arrivals_issued_++;
    Rng session_rng(
        Mix64(options_.seed ^ Mix64(static_cast<uint64_t>(index))));
    ++report->arrivals;

    net::Client& client = clients[static_cast<size_t>(
        index % options_.num_connections)];
    WorkerId worker = crowd_->NextWorker(&session_rng);
    net::HelloResponse hello;
    st = client.Hello(net::HelloRequest{worker}, &hello);
    if (!st.ok()) {
      report->socket_status = st;
      return;
    }
    if (hello.schema_fingerprint != local_fingerprint) {
      report->socket_status = Status::FailedPrecondition(
          "server schema fingerprint does not match the local world — "
          "refusing to drive a mismatched table");
      return;
    }

    net::LeaseRequest lease_req;
    lease_req.session = hello.session;
    lease_req.max_tasks = static_cast<uint32_t>(options_.tasks_per_request);
    net::LeaseResponse lease;
    st = client.Lease(lease_req, &lease);
    if (!st.ok()) {
      report->socket_status = st;
      return;
    }
    report->assignments += static_cast<int64_t>(lease.cells.size());

    bool abandons =
        !lease.cells.empty() && session_rng.Bernoulli(options_.abandon_prob);
    if (abandons) {
      ++report->abandoned_sessions;
    } else {
      std::vector<std::pair<CellRef, Value>> items;
      items.reserve(lease.cells.size());
      for (const CellRef& cell : lease.cells) {
        items.emplace_back(cell,
                           crowd_->AnswerWith(worker, cell, &session_rng));
      }
      for (size_t lo = 0; lo < items.size();
           lo += static_cast<size_t>(options_.batch_size)) {
        size_t hi = std::min(items.size(),
                             lo + static_cast<size_t>(options_.batch_size));
        net::SubmitBatchRequest submit;
        submit.session = hello.session;
        submit.items.assign(items.begin() + lo, items.begin() + hi);
        net::SubmitBatchResponse verdicts;
        st = client.SubmitBatch(submit, &verdicts);
        if (!st.ok()) {
          report->socket_status = st;
          return;
        }
        ++report->batches;
        for (uint8_t code : verdicts.item_status) {
          if (code == static_cast<uint8_t>(net::WireStatus::kOk)) {
            ++report->answers;
            answers_accepted_.fetch_add(1, std::memory_order_relaxed);
          } else {
            ++report->rejected;
          }
        }
        if (StopRequested()) break;  // "crash": drop the unanswered leases
      }
    }
    net::ByeResponse bye;
    st = client.Bye(net::ByeRequest{hello.session}, &bye);
    if (!st.ok()) {
      report->socket_status = st;
      return;
    }
    drained = lease.drained != 0;
  }

  for (net::Client& client : clients) {
    report->retries += client.retry_later_seen();
  }
  net::StatsResponse stats;
  st = clients[0].Stats(net::StatsRequest{}, &stats);
  if (!st.ok()) {
    report->socket_status = st;
    return;
  }
  report->final_stats.tasks_open = static_cast<int>(stats.tasks_open);
  report->final_stats.tasks_assigned =
      static_cast<int>(stats.tasks_assigned);
  report->final_stats.tasks_answered =
      static_cast<int>(stats.tasks_answered);
  report->final_stats.tasks_finalized =
      static_cast<int>(stats.tasks_finalized);
  report->final_stats.sessions_started =
      static_cast<int64_t>(stats.sessions_started);
  report->final_stats.sessions_active =
      static_cast<int64_t>(stats.sessions_active);
  report->final_stats.sessions_expired =
      static_cast<int64_t>(stats.sessions_expired);
  report->final_stats.answers_accepted =
      static_cast<int64_t>(stats.answers_accepted);
  report->final_stats.answers_rejected =
      static_cast<int64_t>(stats.answers_rejected);
  report->final_stats.answers_retracted =
      static_cast<int64_t>(stats.answers_retracted);
  report->final_stats.answers_restored =
      static_cast<int64_t>(stats.answers_restored);
  report->final_stats.assignments = static_cast<int64_t>(stats.assignments);
  report->final_stats.budget_spent = stats.budget_spent;
  report->final_stats.budget_remaining = stats.budget_remaining;
  report->final_stats.engine_refreshes =
      static_cast<int>(stats.engine_refreshes);
}

bool LoadGenerator::RunArrivalDeterministic(LoadReport* report) {
  // The whole arrival runs under the generator lock, in arrival order, with
  // a stream derived from (seed, arrival index) and only order-independent
  // simulator calls — so the replayed history is a pure function of the
  // options, never of thread interleaving. Driver threads beyond the first
  // only help when the service does work off this thread (async refreshes
  // already do); the REPLAYED HISTORY is identical either way.
  std::lock_guard<std::mutex> lock(mu_);
  // The stop check must happen under the lock: the accepted counter only
  // moves in here, so the crash point lands on the same arrival no matter
  // how many threads are racing for the lock.
  if (StopRequested()) return false;
  if (arrivals_issued_ >= options_.max_arrivals) return false;
  if (service_->Drained()) return false;
  int64_t index = arrivals_issued_++;
  Rng session_rng(
      Mix64(options_.seed ^ Mix64(static_cast<uint64_t>(index))));
  ++report->arrivals;

  WorkerId worker = crowd_->NextWorker(&session_rng);
  service::ServingBackend::SessionId session = service_->StartSession(worker);
  std::vector<CellRef> tasks =
      service_->RequestTasks(session, options_.tasks_per_request);
  report->assignments += static_cast<int64_t>(tasks.size());

  bool abandons =
      !tasks.empty() && session_rng.Bernoulli(options_.abandon_prob);
  if (abandons) {
    ++report->abandoned_sessions;
  } else if (options_.batch_size > 1) {
    std::vector<std::pair<CellRef, Value>> items;
    items.reserve(tasks.size());
    for (const CellRef& cell : tasks) {
      items.emplace_back(cell, crowd_->AnswerWith(worker, cell,
                                                  &session_rng));
    }
    for (size_t lo = 0; lo < items.size();
         lo += static_cast<size_t>(options_.batch_size)) {
      size_t hi = std::min(items.size(),
                           lo + static_cast<size_t>(options_.batch_size));
      std::vector<std::pair<CellRef, Value>> page(items.begin() + lo,
                                                  items.begin() + hi);
      std::vector<Status> statuses =
          service_->SubmitAnswerBatch(session, page);
      ++report->batches;
      for (const Status& st : statuses) {
        if (st.ok()) {
          ++report->answers;
          answers_accepted_.fetch_add(1, std::memory_order_relaxed);
        } else {
          ++report->rejected;
        }
      }
      if (StopRequested()) break;  // "crash": drop the unanswered leases
    }
  } else {
    for (const CellRef& cell : tasks) {
      Value value = crowd_->AnswerWith(worker, cell, &session_rng);
      Status st = service_->SubmitAnswer(session, cell, value);
      if (st.ok()) {
        ++report->answers;
        answers_accepted_.fetch_add(1, std::memory_order_relaxed);
      } else {
        ++report->rejected;
      }
      if (StopRequested()) break;  // "crash": drop the unanswered leases
    }
  }
  service_->EndSession(session);
  return true;
}

void LoadGenerator::DriveLoop(uint64_t seed, LoadReport* report) {
  if (options_.deterministic) {
    while (RunArrivalDeterministic(report)) {
    }
    return;
  }
  Rng rng(seed);
  while (true) {
    if (StopRequested()) return;
    WorkerId worker;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (arrivals_issued_ >= options_.max_arrivals) return;
      if (service_->Drained()) return;
      ++arrivals_issued_;
      worker = crowd_->NextWorker();
    }
    ++report->arrivals;

    service::ServingBackend::SessionId session = service_->StartSession(worker);
    std::vector<CellRef> tasks =
        service_->RequestTasks(session, options_.tasks_per_request);
    report->assignments += static_cast<int64_t>(tasks.size());

    bool abandons = !tasks.empty() && rng.Bernoulli(options_.abandon_prob);
    if (abandons) {
      ++report->abandoned_sessions;
    } else if (options_.batch_size > 1) {
      // Batch replay: answer the whole lease page from the generative
      // model, then submit it in batch_size chunks through the service's
      // batched ingestion path.
      std::vector<std::pair<CellRef, Value>> items;
      items.reserve(tasks.size());
      {
        std::lock_guard<std::mutex> lock(mu_);
        for (const CellRef& cell : tasks) {
          items.emplace_back(cell, crowd_->Answer(worker, cell));
        }
      }
      for (size_t lo = 0; lo < items.size();
           lo += static_cast<size_t>(options_.batch_size)) {
        size_t hi = std::min(items.size(),
                             lo + static_cast<size_t>(options_.batch_size));
        std::vector<std::pair<CellRef, Value>> page(items.begin() + lo,
                                                    items.begin() + hi);
        std::vector<Status> statuses =
            service_->SubmitAnswerBatch(session, page);
        ++report->batches;
        for (const Status& st : statuses) {
          if (st.ok()) {
            ++report->answers;
            answers_accepted_.fetch_add(1, std::memory_order_relaxed);
          } else {
            ++report->rejected;
          }
        }
        if (StopRequested()) break;  // "crash": drop the unanswered leases
      }
    } else {
      for (const CellRef& cell : tasks) {
        Value value;
        {
          std::lock_guard<std::mutex> lock(mu_);
          value = crowd_->Answer(worker, cell);
        }
        Status st = service_->SubmitAnswer(session, cell, value);
        if (st.ok()) {
          ++report->answers;
          answers_accepted_.fetch_add(1, std::memory_order_relaxed);
        } else {
          ++report->rejected;
        }
        if (StopRequested()) break;  // "crash": drop the unanswered leases
      }
    }
    service_->EndSession(session);
  }
}

LoadReport LoadGenerator::Run() {
  LoadReport report;
  auto start = std::chrono::steady_clock::now();

  if (!options_.connect.empty()) {
    // Socket mode: one driver thread serializes arrivals over the open
    // connections (determinism requires a total order of arrivals).
    RunSocket(&report);
    report.stopped_early = StopRequested();
    std::chrono::duration<double> socket_elapsed =
        std::chrono::steady_clock::now() - start;
    report.wall_seconds = socket_elapsed.count();
    report.answers_per_second =
        report.wall_seconds > 0.0
            ? static_cast<double>(report.answers) / report.wall_seconds
            : 0.0;
    return report;
  }

  int n = options_.num_driver_threads;
  std::vector<LoadReport> partials(n);
  if (n == 1) {
    DriveLoop(options_.seed, &partials[0]);
  } else {
    std::vector<std::thread> drivers;
    drivers.reserve(n);
    for (int t = 0; t < n; ++t) {
      drivers.emplace_back([this, t, &partials] {
        DriveLoop(options_.seed + 0x9e3779b97f4a7c15ull * (t + 1),
                  &partials[t]);
      });
    }
    for (std::thread& d : drivers) d.join();
  }

  for (const LoadReport& p : partials) {
    report.arrivals += p.arrivals;
    report.assignments += p.assignments;
    report.answers += p.answers;
    report.rejected += p.rejected;
    report.abandoned_sessions += p.abandoned_sessions;
    report.batches += p.batches;
  }
  report.stopped_early = StopRequested();
  std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  report.wall_seconds = elapsed.count();
  report.answers_per_second =
      report.wall_seconds > 0.0
          ? static_cast<double>(report.answers) / report.wall_seconds
          : 0.0;
  report.final_stats = service_->Stats();
  return report;
}

}  // namespace tcrowd::sim
