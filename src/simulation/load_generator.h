#ifndef TCROWD_SIMULATION_LOAD_GENERATOR_H_
#define TCROWD_SIMULATION_LOAD_GENERATOR_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "net/client.h"
#include "service/crowd_service.h"
#include "simulation/crowd_simulator.h"

namespace tcrowd::sim {

/// Knobs of the replay driver.
struct LoadGeneratorOptions {
  /// Upper bound on worker-arrival events (sessions opened). The run also
  /// stops as soon as the service reports itself drained.
  int max_arrivals = 1000000;
  /// Tasks requested per arriving worker (paper Section 5.3 batches).
  int tasks_per_request = 1;
  /// Probability a session walks away without answering its leases — the
  /// abandonment that exercises lease release + backfill.
  double abandon_prob = 0.0;
  /// Batch replay mode: > 1 submits a session's answers through
  /// CrowdService::SubmitAnswerBatch in pages of this size (one service
  /// lock + one engine ingest pass per page); <= 1 replays per answer via
  /// SubmitAnswer.
  int batch_size = 1;
  /// Concurrent driver threads replaying arrivals against the service.
  int num_driver_threads = 1;
  /// Kill/restart replay mode: > 0 stops the run (all driver threads) once
  /// this many answers were accepted, leaving the service mid-flight — the
  /// harness for simulated crashes (`serve-sim --crash-after=N`). A
  /// restarted service gets a FRESH generator that drives the remainder.
  /// <= 0 runs to drain as usual.
  int64_t stop_after_answers = 0;
  /// Deterministic replay (default): each whole arrival — session open,
  /// leases, answers, close — runs serialized in arrival order, driven by a
  /// session stream derived from (seed, arrival index) and the simulator's
  /// order-independent AnswerWith() path, so the replayed history (and the
  /// finalized truths) is bit-identical for ANY num_driver_threads. False
  /// restores the racy mode where driver threads interleave service calls
  /// freely (per-thread streams, shared lazy simulator draws) — the
  /// contention-realistic setting for throughput measurements, at the cost
  /// of run-to-run variation.
  bool deterministic = true;
  uint64_t seed = 7;
  /// Socket-driving mode: non-empty ("HOST:PORT") drives a remote
  /// tcrowd_serverd over the binary protocol (docs/PROTOCOL.md) instead of
  /// calling the service in-process. The arrival pattern is the
  /// deterministic one — whole arrivals serialized in index order, streams
  /// derived from (seed, arrival index) — round-robined across
  /// `num_connections` open connections by ONE driver thread, so the
  /// server-observed call sequence (and therefore its event log) is a pure
  /// function of the options, exactly like the in-process deterministic
  /// mode. RETRY_LATER sheds are absorbed by the client's identical
  /// resends and never change the accepted history.
  std::string connect;
  /// Concurrent protocol connections in socket mode.
  int num_connections = 4;
};

/// What a replay run produced, next to the service's own metrics registry.
struct LoadReport {
  int64_t arrivals = 0;
  int64_t assignments = 0;
  int64_t answers = 0;
  int64_t rejected = 0;
  int64_t abandoned_sessions = 0;
  /// SubmitAnswerBatch calls issued (0 in per-answer replay mode).
  int64_t batches = 0;
  /// True when the run hit stop_after_answers instead of draining.
  bool stopped_early = false;
  double wall_seconds = 0.0;
  /// Answer-event throughput of the whole run.
  double answers_per_second = 0.0;
  /// Socket mode only: RETRY_LATER verdicts absorbed by batch resends.
  int64_t retries = 0;
  /// Socket mode only: first transport/protocol error that ended the run
  /// early (OK after a clean run and always in in-process mode).
  Status socket_status;
  service::ServiceStats final_stats;
};

/// Replays a CrowdSimulator worker-arrival stream against a ServingBackend
/// (single-engine CrowdService or multi-shard ShardRouter alike):
/// every arrival opens a session, leases tasks, answers them from the
/// simulator's generative model (or abandons), and closes the session. This
/// is the harness that pushes hundreds of thousands of answer events
/// through the online stack.
class LoadGenerator {
 public:
  /// Both pointers are unowned and must outlive Run(). In socket mode
  /// (options.connect non-empty) `svc` may be null — the service lives in
  /// the remote server process and the report's final_stats come from its
  /// Stats response.
  LoadGenerator(CrowdSimulator* crowd, service::ServingBackend* svc,
                LoadGeneratorOptions options);

  /// Drives the service until it drains or max_arrivals is hit. May be
  /// called once per generator.
  LoadReport Run();

 private:
  /// One driver thread's loop; shares the arrival budget with its peers.
  void DriveLoop(uint64_t seed, LoadReport* report);
  /// The socket-mode driver: serialized deterministic arrivals round-robin
  /// over options_.num_connections protocol connections.
  void RunSocket(LoadReport* report);
  /// One whole arrival under the generator lock (deterministic mode):
  /// `session_rng` is the arrival's derived stream. Returns false when the
  /// run is over (arrival budget exhausted or service drained).
  bool RunArrivalDeterministic(LoadReport* report);
  /// True once the accepted-answer total hit stop_after_answers.
  bool StopRequested() const {
    return options_.stop_after_answers > 0 &&
           answers_accepted_.load(std::memory_order_relaxed) >=
               options_.stop_after_answers;
  }

  CrowdSimulator* const crowd_;
  service::ServingBackend* const service_;
  LoadGeneratorOptions options_;

  std::mutex mu_;  ///< guards crowd_ (the simulator is single-threaded)
  int64_t arrivals_issued_ = 0;
  /// Accepted answers across all driver threads (the kill switch's meter).
  std::atomic<int64_t> answers_accepted_{0};
};

}  // namespace tcrowd::sim

#endif  // TCROWD_SIMULATION_LOAD_GENERATOR_H_
