#ifndef TCROWD_SIMULATION_ARRIVAL_MODEL_H_
#define TCROWD_SIMULATION_ARRIVAL_MODEL_H_

#include <memory>
#include <string>

#include "common/rng.h"
#include "simulation/crowd_simulator.h"

namespace tcrowd::sim {

/// Everything an arrival model may look at when drawing the next worker.
struct ArrivalContext {
  const CrowdSimulator* crowd = nullptr;
  /// Arrivals issued so far (the index of THIS arrival, 0-based).
  int64_t arrival_index = 0;
  /// Fraction of the run's answer budget already spent, in [0,1].
  double progress = 0.0;
  /// The caller's deterministic stream for this arrival.
  Rng* rng = nullptr;
};

/// Which simulated worker shows up next. The steady implementation is the
/// simulator's skewed participation draw; adversarial implementations
/// reshape the stream (spam waves, churning cohorts) without touching the
/// per-answer generative model. Stateless and const, like WorkerBehavior —
/// all shaping derives from `progress`/`arrival_index` and the caller's
/// rng, so replays are order-independent.
class ArrivalModel {
 public:
  virtual ~ArrivalModel() = default;
  virtual std::string name() const = 0;
  virtual WorkerId Next(const ArrivalContext& ctx) const = 0;
};

/// The simulator's plain skewed participation stream.
std::unique_ptr<ArrivalModel> MakeSteadyArrivals();

/// A coordinated wave: while progress is inside [wave_start, wave_end),
/// each arrival is, with probability `intensity`, drawn uniformly from the
/// clique selected by InClique(salt, ., clique_fraction) — the attack crew
/// flooding the queue mid-run. Outside the wave (and with probability
/// 1 - intensity inside it) arrivals are steady. Pair `salt` and
/// `clique_fraction` with the hostile WorkerBehavior so the flood and the
/// bad answers come from the same workers.
std::unique_ptr<ArrivalModel> MakeBurstArrivals(double wave_start,
                                                double wave_end,
                                                double intensity,
                                                uint64_t salt,
                                                double clique_fraction);

/// Worker churn: at any moment only a sliding cohort of
/// `cohort_fraction` * pool-size consecutive worker ids participates; the
/// window slides across the whole pool as progress goes 0 -> 1, so early
/// workers disappear and fresh ones keep arriving with no history.
std::unique_ptr<ArrivalModel> MakeChurnArrivals(double cohort_fraction);

}  // namespace tcrowd::sim

#endif  // TCROWD_SIMULATION_ARRIVAL_MODEL_H_
