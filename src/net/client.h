#ifndef TCROWD_NET_CLIENT_H_
#define TCROWD_NET_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "net/protocol.h"
#include "net/socket_util.h"

namespace tcrowd::net {

/// Blocking request/response client over one TCP connection — the driver
/// side of the protocol (LoadGenerator socket mode, `tcrowd_cli client`,
/// the router's RemoteShardBackend). Not thread-safe: one Client per
/// driving thread/connection.
class Client {
 public:
  struct Options {
    /// SubmitBatch resends shed by admission control: attempts before the
    /// client gives up and surfaces the RETRY_LATER as FailedPrecondition.
    int retry_later_max_attempts = 10000;
    /// Back-off between resends; doubles up to 64x.
    int retry_later_sleep_micros = 200;
  };

  Client() = default;
  explicit Client(Options options) : options_(options) {}

  Status Connect(const std::string& host, uint16_t port);
  void Close() { fd_.Reset(); }
  bool connected() const { return fd_.valid(); }

  /// Typed calls: every method is a thin wrapper over the shared Request()
  /// core — encode the request, block for the matching response frame,
  /// decode its payload. An IoError means the connection is dead; a decode
  /// failure means the server broke protocol (both leave the client
  /// closed).
  /// Hello also pins the connection's protocol version: the server's pick
  /// from the ranges (see NegotiateProtocolVersion) is remembered and
  /// readable via negotiated_version(). A default HelloRequest speaks
  /// legacy v1; set max_version = kProtocolVersionMax to offer the full
  /// range.
  Status Hello(const HelloRequest& req, HelloResponse* resp);
  Status Lease(const LeaseRequest& req, LeaseResponse* resp);
  /// Honors the backpressure contract: a kRetryLater verdict backs off and
  /// resends the IDENTICAL batch (nothing was booked server-side), so
  /// shedding never changes the accepted-answer history. The returned
  /// response is the first non-shed verdict.
  Status SubmitBatch(const SubmitBatchRequest& req,
                     SubmitBatchResponse* resp);
  Status Retract(const RetractRequest& req, RetractResponse* resp);
  Status Bye(const ByeRequest& req, ByeResponse* resp);
  Status Finalize(const FinalizeRequest& req, FinalizeResponse* resp);
  Status Stats(const StatsRequest& req, StatsResponse* resp);
  /// v2 only: ships one inter-shard answer delta (docs/SHARDING.md).
  /// FailedPrecondition without a prior Hello that negotiated version >= 2.
  Status ShardDelta(const ShardDeltaRequest& req, ShardDeltaResponse* resp);
  /// v3 only: gathers the shard daemon's ordered live answer log / books
  /// recorded leases onto a session (router-to-daemon traffic,
  /// docs/SHARDING.md). FailedPrecondition without a prior Hello that
  /// negotiated version >= 3.
  Status LogGather(const LogGatherRequest& req, LogGatherResponse* resp);
  Status ApplyLeases(const ApplyLeasesRequest& req,
                     ApplyLeasesResponse* resp);

  /// RETRY_LATER verdicts absorbed by SubmitBatch resends so far.
  int64_t retry_later_seen() const { return retry_later_seen_; }
  /// Version the last successful Hello negotiated (1 before any Hello).
  uint8_t negotiated_version() const { return negotiated_version_; }

 private:
  /// Sends one pre-encoded frame and blocks until a whole frame of type
  /// `expect` arrives; fills *payload with its payload bytes.
  Status Call(const std::string& frame, MsgType expect, std::string* payload);

  /// The one request/response core every typed method wraps: send the
  /// frame, wait for the `expect` response, decode its payload into *resp.
  template <typename Resp>
  Status Request(const std::string& frame, MsgType expect,
                 Status (*decode)(const void*, size_t, Resp*), Resp* resp) {
    std::string payload;
    Status st = Call(frame, expect, &payload);
    if (!st.ok()) return st;
    return decode(payload.data(), payload.size(), resp);
  }

  Options options_;
  OwnedFd fd_;
  FrameDecoder decoder_;
  int64_t retry_later_seen_ = 0;
  uint8_t negotiated_version_ = 1;
};

}  // namespace tcrowd::net

#endif  // TCROWD_NET_CLIENT_H_
