#ifndef TCROWD_NET_SOCKET_UTIL_H_
#define TCROWD_NET_SOCKET_UTIL_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace tcrowd::net {

/// Thin RAII + error-mapping layer over BSD sockets; everything the server
/// and the blocking client share. All functions report failures as Status
/// (kIoError with errno text) instead of crashing.

/// Owns one file descriptor; closes it on destruction. Movable, not
/// copyable.
class OwnedFd {
 public:
  OwnedFd() = default;
  explicit OwnedFd(int fd) : fd_(fd) {}
  ~OwnedFd() { Reset(); }

  OwnedFd(const OwnedFd&) = delete;
  OwnedFd& operator=(const OwnedFd&) = delete;
  OwnedFd(OwnedFd&& other) noexcept : fd_(other.Release()) {}
  OwnedFd& operator=(OwnedFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.Release();
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int Release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void Reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// Creates a listening TCP socket bound to host:port (SO_REUSEADDR,
/// non-blocking). Pass port 0 to let the kernel pick; *bound_port receives
/// the actual port either way.
Status ListenTcp(const std::string& host, uint16_t port, int backlog,
                 OwnedFd* out, uint16_t* bound_port);

/// Blocking TCP connect (used by the client side; the server never
/// connects).
Status ConnectTcp(const std::string& host, uint16_t port, OwnedFd* out);

/// Switches a descriptor to non-blocking mode.
Status SetNonBlocking(int fd);

/// Disables Nagle batching — every protocol exchange is a small
/// request/response pair, so coalescing only adds latency.
Status SetNoDelay(int fd);

/// Writes exactly `n` bytes (blocking socket), retrying short writes and
/// EINTR.
Status WriteAll(int fd, const void* data, size_t n);

/// Reads up to `cap` bytes (blocking socket), retrying EINTR. *n_read = 0
/// means clean EOF.
Status ReadSome(int fd, void* buf, size_t cap, size_t* n_read);

/// Parses "HOST:PORT" (host may be empty → 127.0.0.1).
Status ParseHostPort(const std::string& spec, std::string* host,
                     uint16_t* port);

}  // namespace tcrowd::net

#endif  // TCROWD_NET_SOCKET_UTIL_H_
