#ifndef TCROWD_NET_PROTOCOL_H_
#define TCROWD_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "data/table.h"
#include "data/value.h"

namespace tcrowd::net {

/// Wire protocol of the tcrowd_serverd front-end (docs/PROTOCOL.md). One
/// frame per message, sharing the segment_codec/event_log framing
/// discipline — little-endian fixed-width fields, magic ("TCNP"), an
/// explicit version, a length prefix, and a trailing CRC-32 over everything
/// before it:
///
///   u32 magic "TCNP" | u8 version | u8 type | u32 payload_len |
///   payload bytes    | u32 crc
///
/// Error contract (the house rule): decoders never crash on hostile bytes.
/// The connection decoder (FrameDecoder) treats a bad magic, an unknown
/// version, a hostile length, or a CRC mismatch as connection-fatal — a
/// byte stream that has lost framing cannot be resynchronized, so the
/// server drops the connection. The one-shot stream decoder
/// (DecodeFrameStream) is the lenient test/forensics reader: corruption or
/// a torn tail ends decoding at the last whole frame (bit-exact clean
/// prefix, reported via `truncated`), exactly like the journal reader.
/// Payload lengths are bounded by kMaxFramePayload BEFORE any allocation,
/// so a corrupt length field cannot demand a multi-gigabyte buffer.

/// The baseline frame version every peer speaks; v1 messages are emitted
/// in v1 frames forever, so a pre-negotiation peer sees byte-identical
/// traffic.
inline constexpr uint32_t kProtocolVersion = 1;
/// Version range this build understands. Version 2 added Hello min/max
/// version negotiation and the inter-shard ShardDelta message kind
/// (docs/SHARDING.md); version 3 added the router-to-shard-daemon kinds
/// LogGather and ApplyLeases (multi-process deployment, docs/SHARDING.md).
/// A frame whose version is outside [min, max] — or a message kind wrapped
/// in a frame older than the version that defines it — is
/// connection-fatal.
inline constexpr uint8_t kProtocolVersionMin = 1;
inline constexpr uint8_t kProtocolVersionMax = 3;
/// "TCNP" in little-endian byte order on the wire.
inline constexpr uint32_t kFrameMagic = 0x504e4354;
/// Upper bound on one frame's payload; both sides refuse bigger frames.
inline constexpr size_t kMaxFramePayload = 1u << 20;
/// Bytes before the payload (magic + version + type + payload length).
inline constexpr size_t kFrameHeaderBytes = 10;
/// Trailing CRC-32.
inline constexpr size_t kFrameTrailerBytes = 4;

/// Request/response vocabulary. A response type is its request type | 0x80.
enum class MsgType : uint8_t {
  kHello = 0x01,        ///< open a worker session
  kLease = 0x02,        ///< lease up to k tasks onto a session
  kSubmitBatch = 0x03,  ///< submit a page of answers for leased cells
  kRetract = 0x04,      ///< retract a worker's newest answer on a cell
  kBye = 0x05,          ///< close a session (releases unanswered leases)
  kFinalize = 0x06,     ///< run the final batch-converged fit
  kStats = 0x07,        ///< service + network stats snapshot
  kShardDelta = 0x08,   ///< v2: sealed-segment answer delta between shards
  kLogGather = 0x09,    ///< v3: gather the ordered live answer log
  kApplyLeases = 0x0a,  ///< v3: book recorded leases onto a session

  kHelloResp = 0x81,
  kLeaseResp = 0x82,
  kSubmitBatchResp = 0x83,
  kRetractResp = 0x84,
  kByeResp = 0x85,
  kFinalizeResp = 0x86,
  kStatsResp = 0x87,
  kShardDeltaResp = 0x88,
  kLogGatherResp = 0x89,
  kApplyLeasesResp = 0x8a,
};

const char* MsgTypeName(MsgType type);
bool IsKnownMsgType(uint8_t type);
/// Lowest frame version a message kind may travel in: 3 for
/// LogGather/ApplyLeases, 2 for ShardDelta, 1 for everything else. A
/// newer-only kind inside an older frame is a framing violation (the
/// sender never negotiated the version that defines the message).
uint8_t MinProtocolVersionForMsgType(uint8_t type);

/// Computes the version both ranges can speak: the highest version inside
/// the intersection of [client_min, client_max] and [server_min,
/// server_max]. False (and *negotiated untouched) when the ranges are
/// disjoint or either range is inverted. Hello carries the client range;
/// HelloResponse pins the server's pick for the connection's lifetime.
bool NegotiateProtocolVersion(uint8_t client_min, uint8_t client_max,
                              uint8_t server_min, uint8_t server_max,
                              uint8_t* negotiated);

/// Response status on the wire. kRetryLater is the backpressure verdict: the
/// request was shed BEFORE touching the service (nothing was booked) and the
/// client should back off and resend the identical request.
enum class WireStatus : uint8_t {
  kOk = 0,
  kRetryLater = 1,
  kInvalidArgument = 2,
  kNotFound = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
  kShuttingDown = 7,
};

const char* WireStatusName(WireStatus status);
/// Maps a service StatusCode onto the wire (kOk..kInternal; RETRY_LATER and
/// SHUTTING_DOWN are server-side verdicts with no StatusCode equivalent).
WireStatus WireStatusFromCode(StatusCode code);

// ---------------------------------------------------------------------------
// Message payloads. Fields are fixed-width little-endian; Values travel as a
// kind tag + exact IEEE-754 bit pattern (continuous) or label index
// (categorical), so an answer decodes bit-identical to what was sent.

struct HelloRequest {
  int32_t worker = 0;
  /// Version range the client can speak. The defaults encode as the legacy
  /// 4-byte v1 Hello (byte-identical to pre-negotiation builds); max >= 2
  /// encodes the extended v2 Hello carrying the range.
  uint8_t min_version = 1;
  uint8_t max_version = 1;
};

/// Per-column schema summary so a remote client can produce valid answers
/// without a local copy of the table.
struct WireColumn {
  uint8_t categorical = 0;  ///< 1 = categorical, 0 = continuous
  uint32_t label_count = 0;  ///< labels of a categorical column, else 0
};

struct HelloResponse {
  WireStatus status = WireStatus::kOk;
  uint64_t session = 0;
  /// SchemaFingerprint(schema, num_rows) of the serving table; a client
  /// driving from a locally rebuilt world refuses a mismatched server.
  uint64_t schema_fingerprint = 0;
  uint32_t num_rows = 0;
  std::vector<WireColumn> columns;
  /// Version the server picked for this connection (>= 2 appends it to the
  /// response; 1 encodes the legacy byte-identical v1 response). A v1
  /// client never sees the field and keeps speaking v1.
  uint8_t negotiated_version = 1;
};

struct LeaseRequest {
  uint64_t session = 0;
  uint32_t max_tasks = 0;
};

struct LeaseResponse {
  WireStatus status = WireStatus::kOk;
  /// True when no further assignment can ever happen (budget exhausted or
  /// every task finalized) — the remote driver's stop signal.
  uint8_t drained = 0;
  std::vector<CellRef> cells;
};

struct SubmitBatchRequest {
  uint64_t session = 0;
  std::vector<std::pair<CellRef, Value>> items;
};

struct SubmitBatchResponse {
  /// kOk: the batch reached the service; per-item verdicts below.
  /// kRetryLater: the WHOLE batch was shed by admission control — nothing
  /// was booked, resend the identical batch after backing off.
  WireStatus status = WireStatus::kOk;
  /// One StatusCode per submitted item, aligned with the request (empty
  /// when the batch was shed).
  std::vector<uint8_t> item_status;
};

struct RetractRequest {
  int32_t worker = 0;
  CellRef cell{0, 0};
};

struct RetractResponse {
  WireStatus status = WireStatus::kOk;
};

struct ByeRequest {
  uint64_t session = 0;
};

struct ByeResponse {
  WireStatus status = WireStatus::kOk;
};

struct FinalizeRequest {};

struct FinalizeResponse {
  WireStatus status = WireStatus::kOk;
  /// TruthDigest of the finalized table — the bit-exact comparator behind
  /// the socket-vs-in-process identity guarantee.
  uint64_t digest = 0;
  uint64_t answer_count = 0;
};

struct StatsRequest {};

struct StatsResponse {
  WireStatus status = WireStatus::kOk;
  // Service ledger (CrowdService::Stats).
  uint32_t tasks_open = 0;
  uint32_t tasks_assigned = 0;
  uint32_t tasks_answered = 0;
  uint32_t tasks_finalized = 0;
  uint64_t sessions_started = 0;
  uint64_t sessions_active = 0;
  uint64_t sessions_expired = 0;
  uint64_t answers_accepted = 0;
  uint64_t answers_rejected = 0;
  uint64_t answers_retracted = 0;
  uint64_t answers_restored = 0;
  uint64_t assignments = 0;
  int64_t budget_spent = 0;
  int64_t budget_remaining = 0;
  uint32_t engine_refreshes = 0;
  uint8_t drained = 0;
  // Network front-end counters (Server::net_stats).
  uint64_t connections_accepted = 0;
  uint64_t connections_open = 0;
  uint64_t frames_processed = 0;
  uint64_t retry_later_total = 0;
  uint64_t write_queue_peak = 0;
  uint64_t http_requests = 0;
  uint64_t frame_errors = 0;
  /// Engine answers absorbed since the last refresh — the admission
  /// control meter (shed when this exceeds the in-flight budget).
  uint64_t inflight_answers = 0;
  uint64_t inflight_budget = 0;
};

/// v2: one sealed-segment delta from a shard to a peer (sibling shard or
/// standby replica, docs/SHARDING.md). The answers travel as ONE
/// segment_codec answer block — the exact byte format of a durable segment
/// file — with rows already remapped to GLOBAL coordinates, so the receiver
/// needs no copy of the sender's partition map. `seqs` carries the global
/// arrival sequence number of each answer in the block (same order, same
/// count — enforced on apply), which is what lets a replica merge deltas
/// from N shards back into the single global arrival order the merged
/// Finalize fit runs in. `retracted_seqs` kills answers shipped by an
/// earlier delta of the same shard.
struct ShardDeltaRequest {
  uint32_t shard = 0;
  /// SchemaFingerprint(schema, num_rows) of the GLOBAL table; a replica
  /// refuses a delta for a differently shaped world.
  uint64_t schema_fingerprint = 0;
  std::vector<uint64_t> seqs;
  std::vector<uint64_t> retracted_seqs;
  /// EncodeAnswerBlock bytes holding seqs.size() answers (global rows).
  std::string block;
};

struct ShardDeltaResponse {
  WireStatus status = WireStatus::kOk;
  uint64_t answers_applied = 0;
  uint64_t retractions_applied = 0;
};

/// v3: ask a shard daemon for its ordered live answer log — the router's
/// Finalize seam (docs/SHARDING.md). The response carries the engine's
/// answers in arrival order as ONE segment_codec answer block with the
/// daemon's LOCAL row coordinates; the router pairs them positionally with
/// its global arrival-seq ledger, exactly as it snapshots an in-process
/// shard.
struct LogGatherRequest {};

struct LogGatherResponse {
  WireStatus status = WireStatus::kOk;
  /// Answers in `block` (kOutOfRange with an empty block when the log no
  /// longer fits one frame — kMaxFramePayload bounds a gather to ~40k
  /// answers; chunked gathers are future work).
  uint64_t answer_count = 0;
  /// EncodeAnswerBlock bytes holding answer_count answers (local rows,
  /// arrival order).
  std::string block;
};

/// v3: book previously recorded lease decisions onto a session — the wire
/// form of ServingBackend::ApplyRecordedLeases, used by deterministic
/// replay drivers against a remote shard.
struct ApplyLeasesRequest {
  uint64_t session = 0;
  std::vector<CellRef> cells;
};

struct ApplyLeasesResponse {
  WireStatus status = WireStatus::kOk;
};

// ---------------------------------------------------------------------------
// Frame encoders. Each appends one complete frame (header + payload + CRC)
// to `*out`; requests from the client, responses from the server.

void EncodeHelloRequest(const HelloRequest& msg, std::string* out);
void EncodeHelloResponse(const HelloResponse& msg, std::string* out);
void EncodeLeaseRequest(const LeaseRequest& msg, std::string* out);
void EncodeLeaseResponse(const LeaseResponse& msg, std::string* out);
void EncodeSubmitBatchRequest(const SubmitBatchRequest& msg,
                              std::string* out);
void EncodeSubmitBatchResponse(const SubmitBatchResponse& msg,
                               std::string* out);
void EncodeRetractRequest(const RetractRequest& msg, std::string* out);
void EncodeRetractResponse(const RetractResponse& msg, std::string* out);
void EncodeByeRequest(const ByeRequest& msg, std::string* out);
void EncodeByeResponse(const ByeResponse& msg, std::string* out);
void EncodeFinalizeRequest(const FinalizeRequest& msg, std::string* out);
void EncodeFinalizeResponse(const FinalizeResponse& msg, std::string* out);
void EncodeStatsRequest(const StatsRequest& msg, std::string* out);
void EncodeStatsResponse(const StatsResponse& msg, std::string* out);
/// ShardDelta frames always travel as protocol v2 (the kind does not exist
/// in v1); send them only after Hello negotiated version >= 2.
void EncodeShardDeltaRequest(const ShardDeltaRequest& msg, std::string* out);
void EncodeShardDeltaResponse(const ShardDeltaResponse& msg,
                              std::string* out);
/// LogGather/ApplyLeases frames always travel as protocol v3 (the kinds do
/// not exist earlier); send them only after Hello negotiated version >= 3.
void EncodeLogGatherRequest(const LogGatherRequest& msg, std::string* out);
void EncodeLogGatherResponse(const LogGatherResponse& msg, std::string* out);
void EncodeApplyLeasesRequest(const ApplyLeasesRequest& msg,
                              std::string* out);
void EncodeApplyLeasesResponse(const ApplyLeasesResponse& msg,
                               std::string* out);

// ---------------------------------------------------------------------------
// Payload decoders. `data/size` is one frame's payload (the FrameDecoder
// already verified magic/version/CRC). InvalidArgument on a payload that
// does not parse as the named message; never crashes on hostile bytes.

Status DecodeHelloRequest(const void* data, size_t size, HelloRequest* out);
Status DecodeHelloResponse(const void* data, size_t size,
                           HelloResponse* out);
Status DecodeLeaseRequest(const void* data, size_t size, LeaseRequest* out);
Status DecodeLeaseResponse(const void* data, size_t size,
                           LeaseResponse* out);
Status DecodeSubmitBatchRequest(const void* data, size_t size,
                                SubmitBatchRequest* out);
Status DecodeSubmitBatchResponse(const void* data, size_t size,
                                 SubmitBatchResponse* out);
Status DecodeRetractRequest(const void* data, size_t size,
                            RetractRequest* out);
Status DecodeRetractResponse(const void* data, size_t size,
                             RetractResponse* out);
Status DecodeByeRequest(const void* data, size_t size, ByeRequest* out);
Status DecodeByeResponse(const void* data, size_t size, ByeResponse* out);
Status DecodeFinalizeRequest(const void* data, size_t size,
                             FinalizeRequest* out);
Status DecodeFinalizeResponse(const void* data, size_t size,
                              FinalizeResponse* out);
Status DecodeStatsRequest(const void* data, size_t size, StatsRequest* out);
Status DecodeStatsResponse(const void* data, size_t size,
                           StatsResponse* out);
Status DecodeShardDeltaRequest(const void* data, size_t size,
                               ShardDeltaRequest* out);
Status DecodeShardDeltaResponse(const void* data, size_t size,
                                ShardDeltaResponse* out);
Status DecodeLogGatherRequest(const void* data, size_t size,
                              LogGatherRequest* out);
Status DecodeLogGatherResponse(const void* data, size_t size,
                               LogGatherResponse* out);
Status DecodeApplyLeasesRequest(const void* data, size_t size,
                                ApplyLeasesRequest* out);
Status DecodeApplyLeasesResponse(const void* data, size_t size,
                                 ApplyLeasesResponse* out);

// ---------------------------------------------------------------------------
// Framing.

/// One decoded frame: the type byte plus the raw payload bytes (decode the
/// payload with the matching Decode*() above).
struct Frame {
  MsgType type = MsgType::kHello;
  /// Frame version as it appeared on the wire (within [kProtocolVersionMin,
  /// kProtocolVersionMax], or the frame would have been corrupt).
  uint8_t version = static_cast<uint8_t>(kProtocolVersion);
  std::string payload;
};

/// Incremental frame extractor over a TCP byte stream. Feed() appends
/// arriving bytes; Next() peels whole frames off the front. Strict by
/// design: any framing violation (wrong magic, unknown version, hostile
/// length, CRC mismatch, unknown type) is kCorrupt and the connection must
/// be dropped — there is no way to resynchronize a framed stream that has
/// lost its framing.
class FrameDecoder {
 public:
  enum class Result {
    kFrame,     ///< *out holds the next whole frame
    kNeedMore,  ///< clean prefix so far; feed more bytes
    kCorrupt,   ///< framing violated; drop the connection
  };

  explicit FrameDecoder(size_t max_payload = kMaxFramePayload)
      : max_payload_(max_payload) {}

  void Feed(const void* data, size_t n);
  Result Next(Frame* out, std::string* error);
  size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  size_t max_payload_ = kMaxFramePayload;
  std::string buffer_;
  size_t consumed_ = 0;  ///< bytes of buffer_ already peeled off
};

/// Result of decoding a captured byte stream end to end (tests, captures).
struct FrameStreamReplay {
  std::vector<Frame> frames;
  /// True when trailing bytes were dropped — a torn final frame or any
  /// corruption; decode keeps the longest clean prefix of whole frames.
  bool truncated = false;
};

/// Lenient one-shot decoder over a captured stream: always returns OK, keeps
/// the bit-exact clean prefix (see FrameStreamReplay::truncated). Same
/// hostile-length guard as the connection decoder.
Status DecodeFrameStream(const void* data, size_t size,
                         FrameStreamReplay* out,
                         size_t max_payload = kMaxFramePayload);

}  // namespace tcrowd::net

#endif  // TCROWD_NET_PROTOCOL_H_
