#include "net/client.h"

#include <chrono>
#include <thread>

namespace tcrowd::net {

Status Client::Connect(const std::string& host, uint16_t port) {
  Close();
  decoder_ = FrameDecoder();
  negotiated_version_ = 1;
  return ConnectTcp(host, port, &fd_);
}

Status Client::Call(const std::string& frame, MsgType expect,
                    std::string* payload) {
  if (!connected()) return Status::FailedPrecondition("client not connected");
  Status st = WriteAll(fd_.get(), frame.data(), frame.size());
  if (!st.ok()) {
    Close();
    return st;
  }
  char buf[4096];
  for (;;) {
    Frame got;
    std::string error;
    switch (decoder_.Next(&got, &error)) {
      case FrameDecoder::Result::kFrame:
        if (got.type != expect) {
          Close();
          return Status::Internal(
              std::string("unexpected response frame: got ") +
              MsgTypeName(got.type) + ", want " + MsgTypeName(expect));
        }
        *payload = std::move(got.payload);
        return Status::Ok();
      case FrameDecoder::Result::kCorrupt:
        Close();
        return Status::IoError("server broke framing: " + error);
      case FrameDecoder::Result::kNeedMore:
        break;
    }
    size_t n = 0;
    st = ReadSome(fd_.get(), buf, sizeof(buf), &n);
    if (!st.ok()) {
      Close();
      return st;
    }
    if (n == 0) {
      Close();
      return Status::IoError("connection closed by server");
    }
    decoder_.Feed(buf, n);
  }
}

Status Client::Hello(const HelloRequest& req, HelloResponse* resp) {
  std::string frame;
  EncodeHelloRequest(req, &frame);
  Status st = Request(frame, MsgType::kHelloResp, DecodeHelloResponse, resp);
  if (st.ok() && resp->status == WireStatus::kOk) {
    negotiated_version_ = resp->negotiated_version;
  }
  return st;
}

Status Client::Lease(const LeaseRequest& req, LeaseResponse* resp) {
  std::string frame;
  EncodeLeaseRequest(req, &frame);
  return Request(frame, MsgType::kLeaseResp, DecodeLeaseResponse, resp);
}

Status Client::SubmitBatch(const SubmitBatchRequest& req,
                           SubmitBatchResponse* resp) {
  std::string frame;
  EncodeSubmitBatchRequest(req, &frame);
  int sleep_micros = options_.retry_later_sleep_micros;
  for (int attempt = 0; attempt < options_.retry_later_max_attempts;
       ++attempt) {
    Status st = Request(frame, MsgType::kSubmitBatchResp,
                        DecodeSubmitBatchResponse, resp);
    if (!st.ok()) return st;
    if (resp->status != WireStatus::kRetryLater) return Status::Ok();
    ++retry_later_seen_;
    std::this_thread::sleep_for(std::chrono::microseconds(sleep_micros));
    if (sleep_micros < options_.retry_later_sleep_micros * 64) {
      sleep_micros *= 2;
    }
  }
  return Status::FailedPrecondition(
      "server kept shedding the batch (RETRY_LATER) past the retry budget");
}

Status Client::Retract(const RetractRequest& req, RetractResponse* resp) {
  std::string frame;
  EncodeRetractRequest(req, &frame);
  return Request(frame, MsgType::kRetractResp, DecodeRetractResponse, resp);
}

Status Client::Bye(const ByeRequest& req, ByeResponse* resp) {
  std::string frame;
  EncodeByeRequest(req, &frame);
  return Request(frame, MsgType::kByeResp, DecodeByeResponse, resp);
}

Status Client::Finalize(const FinalizeRequest& req, FinalizeResponse* resp) {
  std::string frame;
  EncodeFinalizeRequest(req, &frame);
  return Request(frame, MsgType::kFinalizeResp, DecodeFinalizeResponse, resp);
}

Status Client::Stats(const StatsRequest& req, StatsResponse* resp) {
  std::string frame;
  EncodeStatsRequest(req, &frame);
  return Request(frame, MsgType::kStatsResp, DecodeStatsResponse, resp);
}

Status Client::ShardDelta(const ShardDeltaRequest& req,
                          ShardDeltaResponse* resp) {
  if (negotiated_version_ < 2) {
    return Status::FailedPrecondition(
        "ShardDelta requires a Hello that negotiated protocol version >= 2");
  }
  std::string frame;
  EncodeShardDeltaRequest(req, &frame);
  return Request(frame, MsgType::kShardDeltaResp, DecodeShardDeltaResponse,
                 resp);
}

Status Client::LogGather(const LogGatherRequest& req,
                         LogGatherResponse* resp) {
  if (negotiated_version_ < 3) {
    return Status::FailedPrecondition(
        "LogGather requires a Hello that negotiated protocol version >= 3");
  }
  std::string frame;
  EncodeLogGatherRequest(req, &frame);
  return Request(frame, MsgType::kLogGatherResp, DecodeLogGatherResponse,
                 resp);
}

Status Client::ApplyLeases(const ApplyLeasesRequest& req,
                           ApplyLeasesResponse* resp) {
  if (negotiated_version_ < 3) {
    return Status::FailedPrecondition(
        "ApplyLeases requires a Hello that negotiated protocol version >= 3");
  }
  std::string frame;
  EncodeApplyLeasesRequest(req, &frame);
  return Request(frame, MsgType::kApplyLeasesResp, DecodeApplyLeasesResponse,
                 resp);
}

}  // namespace tcrowd::net
