#include "net/client.h"

#include <chrono>
#include <thread>

namespace tcrowd::net {

Status Client::Connect(const std::string& host, uint16_t port) {
  Close();
  decoder_ = FrameDecoder();
  negotiated_version_ = 1;
  return ConnectTcp(host, port, &fd_);
}

Status Client::Call(const std::string& frame, MsgType expect,
                    std::string* payload) {
  if (!connected()) return Status::FailedPrecondition("client not connected");
  Status st = WriteAll(fd_.get(), frame.data(), frame.size());
  if (!st.ok()) {
    Close();
    return st;
  }
  char buf[4096];
  for (;;) {
    Frame got;
    std::string error;
    switch (decoder_.Next(&got, &error)) {
      case FrameDecoder::Result::kFrame:
        if (got.type != expect) {
          Close();
          return Status::Internal(
              std::string("unexpected response frame: got ") +
              MsgTypeName(got.type) + ", want " + MsgTypeName(expect));
        }
        *payload = std::move(got.payload);
        return Status::Ok();
      case FrameDecoder::Result::kCorrupt:
        Close();
        return Status::IoError("server broke framing: " + error);
      case FrameDecoder::Result::kNeedMore:
        break;
    }
    size_t n = 0;
    st = ReadSome(fd_.get(), buf, sizeof(buf), &n);
    if (!st.ok()) {
      Close();
      return st;
    }
    if (n == 0) {
      Close();
      return Status::IoError("connection closed by server");
    }
    decoder_.Feed(buf, n);
  }
}

Status Client::Hello(const HelloRequest& req, HelloResponse* resp) {
  std::string frame, payload;
  EncodeHelloRequest(req, &frame);
  Status st = Call(frame, MsgType::kHelloResp, &payload);
  if (!st.ok()) return st;
  st = DecodeHelloResponse(payload.data(), payload.size(), resp);
  if (st.ok() && resp->status == WireStatus::kOk) {
    negotiated_version_ = resp->negotiated_version;
  }
  return st;
}

Status Client::Lease(const LeaseRequest& req, LeaseResponse* resp) {
  std::string frame, payload;
  EncodeLeaseRequest(req, &frame);
  Status st = Call(frame, MsgType::kLeaseResp, &payload);
  if (!st.ok()) return st;
  return DecodeLeaseResponse(payload.data(), payload.size(), resp);
}

Status Client::SubmitBatch(const SubmitBatchRequest& req,
                           SubmitBatchResponse* resp) {
  std::string frame;
  EncodeSubmitBatchRequest(req, &frame);
  int sleep_micros = options_.retry_later_sleep_micros;
  for (int attempt = 0; attempt < options_.retry_later_max_attempts;
       ++attempt) {
    std::string payload;
    Status st = Call(frame, MsgType::kSubmitBatchResp, &payload);
    if (!st.ok()) return st;
    st = DecodeSubmitBatchResponse(payload.data(), payload.size(), resp);
    if (!st.ok()) return st;
    if (resp->status != WireStatus::kRetryLater) return Status::Ok();
    ++retry_later_seen_;
    std::this_thread::sleep_for(std::chrono::microseconds(sleep_micros));
    if (sleep_micros < options_.retry_later_sleep_micros * 64) {
      sleep_micros *= 2;
    }
  }
  return Status::FailedPrecondition(
      "server kept shedding the batch (RETRY_LATER) past the retry budget");
}

Status Client::Retract(const RetractRequest& req, RetractResponse* resp) {
  std::string frame, payload;
  EncodeRetractRequest(req, &frame);
  Status st = Call(frame, MsgType::kRetractResp, &payload);
  if (!st.ok()) return st;
  return DecodeRetractResponse(payload.data(), payload.size(), resp);
}

Status Client::Bye(const ByeRequest& req, ByeResponse* resp) {
  std::string frame, payload;
  EncodeByeRequest(req, &frame);
  Status st = Call(frame, MsgType::kByeResp, &payload);
  if (!st.ok()) return st;
  return DecodeByeResponse(payload.data(), payload.size(), resp);
}

Status Client::Finalize(const FinalizeRequest& req, FinalizeResponse* resp) {
  std::string frame, payload;
  EncodeFinalizeRequest(req, &frame);
  Status st = Call(frame, MsgType::kFinalizeResp, &payload);
  if (!st.ok()) return st;
  return DecodeFinalizeResponse(payload.data(), payload.size(), resp);
}

Status Client::Stats(const StatsRequest& req, StatsResponse* resp) {
  std::string frame, payload;
  EncodeStatsRequest(req, &frame);
  Status st = Call(frame, MsgType::kStatsResp, &payload);
  if (!st.ok()) return st;
  return DecodeStatsResponse(payload.data(), payload.size(), resp);
}

Status Client::ShardDelta(const ShardDeltaRequest& req,
                          ShardDeltaResponse* resp) {
  if (negotiated_version_ < 2) {
    return Status::FailedPrecondition(
        "ShardDelta requires a Hello that negotiated protocol version >= 2");
  }
  std::string frame, payload;
  EncodeShardDeltaRequest(req, &frame);
  Status st = Call(frame, MsgType::kShardDeltaResp, &payload);
  if (!st.ok()) return st;
  return DecodeShardDeltaResponse(payload.data(), payload.size(), resp);
}

}  // namespace tcrowd::net
