#ifndef TCROWD_NET_SERVER_H_
#define TCROWD_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "net/protocol.h"
#include "net/socket_util.h"
#include "service/crowd_service.h"

namespace tcrowd::net {

struct ServerOptions {
  /// Use poll() even when epoll is available — keeps the fallback path
  /// exercised by the same tests that run the epoll path.
  bool force_poll = false;
  /// Listen backlog.
  int backlog = 128;
  /// Per-connection write-queue high watermark (bytes). A connection whose
  /// queued responses exceed this stops being read (flow control) until the
  /// queue drains below half — so a slow reader's memory footprint is
  /// bounded instead of growing with the flood.
  size_t write_queue_high = 256u << 10;
  /// Global admission-control budget: SubmitBatch requests are shed with
  /// RETRY_LATER while engine answers-since-refresh >= budget. 0 derives
  /// inflight_budget_factor * staleness_threshold; < 0 disables shedding.
  int64_t inflight_budget = 0;
  /// Multiplier on InferenceArgs::staleness_threshold when the budget is
  /// derived (the shed point = this many un-refreshed answer batches).
  int inflight_budget_factor = 8;
  /// Fairness: max frames served per connection per event-loop wake, so a
  /// flooding connection with a full read buffer cannot starve its peers.
  int max_frames_per_wake = 16;
  /// v2 inter-shard replication hook (docs/SHARDING.md): when set, a
  /// ShardDelta frame arriving on a connection that negotiated protocol
  /// version >= 2 is handed here (e.g. into a service::StandbyReplica).
  /// Unset, or on a v1 connection, the request is answered with
  /// FAILED_PRECONDITION instead of being dropped.
  std::function<Status(const ShardDeltaRequest&, ShardDeltaResponse*)>
      shard_delta_handler;
};

/// Counters the event loop maintains; exported via Stats responses and
/// /metrics.
struct NetStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_open = 0;
  uint64_t frames_processed = 0;
  uint64_t retry_later_total = 0;
  uint64_t write_queue_peak = 0;
  uint64_t http_requests = 0;
  /// Connections dropped for framing violations (bad magic/CRC/length).
  uint64_t frame_errors = 0;
};

/// The tcrowd_serverd front-end: one thread, one event loop (epoll on
/// Linux, poll() everywhere or under force_poll), many connections, every
/// request dispatched onto the shared CrowdService. Because the loop is
/// single-threaded, service calls happen in exactly the order frames
/// complete — the property behind socket-mode determinism.
///
/// The same listener also answers plain-text HTTP: a connection whose first
/// bytes are not the frame magic is sniffed, and `GET /metrics` returns the
/// service registry in Prometheus text exposition format (then closes).
///
/// Backpressure (docs/PROTOCOL.md): SubmitBatch is shed with RETRY_LATER
/// while the engine's answers-since-refresh sits at/above the in-flight
/// budget — nothing is booked, the client resends the identical batch — and
/// a connection whose write queue passes the high watermark stops being
/// read until it drains.
class Server {
 public:
  Server(service::ServingBackend* service, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and listens (port 0 = kernel-assigned; see port()). Must be
  /// called exactly once, before Run().
  Status Listen(const std::string& host, uint16_t port);
  uint16_t port() const { return port_; }

  /// Runs the event loop until Stop(). Blocks the calling thread.
  Status Run();

  /// Async-signal-safe stop: wakes the loop via the self-pipe. Safe to call
  /// from any thread or from a signal handler.
  void Stop();

  NetStats net_stats() const;
  /// The budget SubmitBatch admission is checked against.
  int64_t inflight_budget() const { return inflight_budget_; }

 private:
  struct Connection;

  void AcceptPending();
  /// Reads and serves one connection; returns false when the connection
  /// must be closed.
  bool HandleReadable(Connection* conn);
  /// Flushes queued response bytes; returns false when the connection died.
  bool HandleWritable(Connection* conn);
  /// Serves buffered whole frames (up to the fairness cap); false = close.
  bool ServeFrames(Connection* conn);
  /// Dispatches one decoded request frame onto the service, appending the
  /// response frame to the connection's write queue; false = close.
  bool Dispatch(Connection* conn, const Frame& frame);
  /// Serves sniffed HTTP bytes; false = close (always closes after one
  /// response — the endpoint is Connection: close by design).
  bool ServeHttp(Connection* conn);
  void QueueResponse(Connection* conn, std::string frame);
  void CloseConnection(int fd);
  bool wants_write(const Connection& conn) const;
  bool paused(const Connection& conn) const;

  Status RunPoll();
#ifdef __linux__
  Status RunEpoll();
  /// Re-arms the epoll registration after queue/pause state changed.
  void UpdateEpoll(int epfd, Connection* conn);
#endif

  service::ServingBackend* const service_;
  const ServerOptions options_;
  int64_t inflight_budget_ = 0;

  OwnedFd listen_fd_;
  uint16_t port_ = 0;
  OwnedFd wake_read_, wake_write_;  ///< self-pipe; Stop() writes one byte
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};

  std::unordered_map<int, std::unique_ptr<Connection>> connections_;
  mutable std::mutex stats_mu_;
  NetStats stats_;
};

}  // namespace tcrowd::net

#endif  // TCROWD_NET_SERVER_H_
