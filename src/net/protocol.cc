#include "net/protocol.h"

#include <cstring>

#include "inference/segment_codec.h"

namespace tcrowd::net {
namespace {

// --------------------------------------------------------------------------
// Little-endian primitives (same discipline as segment_codec.cc: explicit
// byte shifts, never memcpy of the host representation).

void PutU8(uint8_t v, std::string* out) {
  out->push_back(static_cast<char>(v));
}

void PutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutI32(int32_t v, std::string* out) {
  PutU32(static_cast<uint32_t>(v), out);
}

void PutI64(int64_t v, std::string* out) {
  PutU64(static_cast<uint64_t>(v), out);
}

void PutDouble(double v, std::string* out) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "IEEE-754 double expected");
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits, out);
}

/// Bounds-checked sequential reader; every getter returns false instead of
/// reading past the end.
struct Reader {
  const uint8_t* p;
  size_t left;

  Reader(const void* data, size_t size)
      : p(static_cast<const uint8_t*>(data)), left(size) {}

  bool U8(uint8_t* v) {
    if (left < 1) return false;
    *v = p[0];
    ++p;
    --left;
    return true;
  }
  bool U32(uint32_t* v) {
    if (left < 4) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) *v |= static_cast<uint32_t>(p[i]) << (8 * i);
    p += 4;
    left -= 4;
    return true;
  }
  bool U64(uint64_t* v) {
    if (left < 8) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) *v |= static_cast<uint64_t>(p[i]) << (8 * i);
    p += 8;
    left -= 8;
    return true;
  }
  bool I32(int32_t* v) {
    uint32_t u;
    if (!U32(&u)) return false;
    *v = static_cast<int32_t>(u);
    return true;
  }
  bool I64(int64_t* v) {
    uint64_t u;
    if (!U64(&u)) return false;
    *v = static_cast<int64_t>(u);
    return true;
  }
  bool Double(double* v) {
    uint64_t bits;
    if (!U64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }
  bool Done() const { return left == 0; }
};

// Value kind tags on the wire (same vocabulary as the disk codec).
constexpr uint8_t kKindCategorical = 0;
constexpr uint8_t kKindContinuous = 1;
constexpr uint8_t kKindMissing = 2;

void PutValue(const Value& v, std::string* out) {
  if (v.is_categorical()) {
    PutU8(kKindCategorical, out);
    PutI32(v.label(), out);
  } else if (v.is_continuous()) {
    PutU8(kKindContinuous, out);
    PutDouble(v.number(), out);
  } else {
    PutU8(kKindMissing, out);
  }
}

bool GetValue(Reader* r, Value* v) {
  uint8_t kind;
  if (!r->U8(&kind)) return false;
  if (kind == kKindCategorical) {
    int32_t label;
    if (!r->I32(&label)) return false;
    *v = Value::Categorical(label);
    return true;
  }
  if (kind == kKindContinuous) {
    double number;
    if (!r->Double(&number)) return false;
    *v = Value::Continuous(number);
    return true;
  }
  if (kind == kKindMissing) {
    *v = Value();
    return true;
  }
  return false;
}

// Smallest possible per-item encodings: sanity-bound decoded counts before
// any allocation so a hostile count cannot demand a multi-gigabyte reserve.
constexpr size_t kMinCellBytes = 8;           // row + col
constexpr size_t kMinSubmitItemBytes = 8 + 1;  // cell + kind tag
constexpr size_t kMinColumnBytes = 1 + 4;      // type + label_count

/// Appends the frame envelope around an encoded payload. Messages that
/// exist in v1 always ship as v1 frames (byte-identical to pre-negotiation
/// builds); only kinds or fields introduced later ride a higher version.
void PutFrame(MsgType type, const std::string& payload, std::string* out,
              uint8_t version = static_cast<uint8_t>(kProtocolVersion)) {
  size_t start = out->size();
  PutU32(kFrameMagic, out);
  PutU8(version, out);
  PutU8(static_cast<uint8_t>(type), out);
  PutU32(static_cast<uint32_t>(payload.size()), out);
  out->append(payload);
  uint32_t crc = Crc32(out->data() + start, out->size() - start);
  PutU32(crc, out);
}

Status Malformed(const char* what) {
  return Status::InvalidArgument(std::string("net frame payload: ") + what);
}

/// Parses one frame at `data` (size bytes available). Shared by the strict
/// connection decoder and the lenient stream decoder; the caller maps the
/// verdicts onto its own error policy.
enum class ParseVerdict { kFrame, kNeedMore, kCorrupt };

ParseVerdict ParseFrame(const uint8_t* data, size_t size, size_t max_payload,
                        Frame* out, size_t* consumed, std::string* error) {
  if (size < kFrameHeaderBytes) return ParseVerdict::kNeedMore;
  Reader header(data, size);
  uint32_t magic, payload_len;
  uint8_t version, type;
  header.U32(&magic);
  header.U8(&version);
  header.U8(&type);
  header.U32(&payload_len);
  if (magic != kFrameMagic) {
    if (error != nullptr) *error = "bad frame magic";
    return ParseVerdict::kCorrupt;
  }
  if (version < kProtocolVersionMin || version > kProtocolVersionMax) {
    if (error != nullptr) *error = "unknown protocol version";
    return ParseVerdict::kCorrupt;
  }
  // The hostile-length allocation guard: refuse before touching payload
  // bytes, so a corrupt length can neither allocate nor stall the stream.
  if (payload_len > max_payload) {
    if (error != nullptr) *error = "hostile frame length";
    return ParseVerdict::kCorrupt;
  }
  if (!IsKnownMsgType(type)) {
    if (error != nullptr) *error = "unknown message type";
    return ParseVerdict::kCorrupt;
  }
  if (version < MinProtocolVersionForMsgType(type)) {
    // A v2-only kind in a v1 frame: the sender never negotiated the
    // version that defines the message, so the stream is not trustworthy.
    if (error != nullptr) *error = "message kind not in frame's version";
    return ParseVerdict::kCorrupt;
  }
  size_t total = kFrameHeaderBytes + payload_len + kFrameTrailerBytes;
  if (size < total) return ParseVerdict::kNeedMore;
  Reader trailer(data + kFrameHeaderBytes + payload_len, kFrameTrailerBytes);
  uint32_t crc;
  trailer.U32(&crc);
  if (crc != Crc32(data, kFrameHeaderBytes + payload_len)) {
    if (error != nullptr) *error = "frame CRC mismatch";
    return ParseVerdict::kCorrupt;
  }
  out->type = static_cast<MsgType>(type);
  out->version = version;
  out->payload.assign(reinterpret_cast<const char*>(data) +
                          kFrameHeaderBytes,
                      payload_len);
  *consumed = total;
  return ParseVerdict::kFrame;
}

}  // namespace

const char* MsgTypeName(MsgType type) {
  switch (type) {
    case MsgType::kHello: return "Hello";
    case MsgType::kLease: return "Lease";
    case MsgType::kSubmitBatch: return "SubmitBatch";
    case MsgType::kRetract: return "Retract";
    case MsgType::kBye: return "Bye";
    case MsgType::kFinalize: return "Finalize";
    case MsgType::kStats: return "Stats";
    case MsgType::kShardDelta: return "ShardDelta";
    case MsgType::kLogGather: return "LogGather";
    case MsgType::kApplyLeases: return "ApplyLeases";
    case MsgType::kHelloResp: return "HelloResp";
    case MsgType::kLeaseResp: return "LeaseResp";
    case MsgType::kSubmitBatchResp: return "SubmitBatchResp";
    case MsgType::kRetractResp: return "RetractResp";
    case MsgType::kByeResp: return "ByeResp";
    case MsgType::kFinalizeResp: return "FinalizeResp";
    case MsgType::kStatsResp: return "StatsResp";
    case MsgType::kShardDeltaResp: return "ShardDeltaResp";
    case MsgType::kLogGatherResp: return "LogGatherResp";
    case MsgType::kApplyLeasesResp: return "ApplyLeasesResp";
  }
  return "unknown";
}

bool IsKnownMsgType(uint8_t type) {
  uint8_t base = type & 0x7f;
  return base >= static_cast<uint8_t>(MsgType::kHello) &&
         base <= static_cast<uint8_t>(MsgType::kApplyLeases);
}

uint8_t MinProtocolVersionForMsgType(uint8_t type) {
  uint8_t base = type & 0x7f;
  if (base >= static_cast<uint8_t>(MsgType::kLogGather)) return 3;
  return base == static_cast<uint8_t>(MsgType::kShardDelta) ? 2 : 1;
}

bool NegotiateProtocolVersion(uint8_t client_min, uint8_t client_max,
                              uint8_t server_min, uint8_t server_max,
                              uint8_t* negotiated) {
  if (client_min > client_max || server_min > server_max) return false;
  uint8_t lo = client_min > server_min ? client_min : server_min;
  uint8_t hi = client_max < server_max ? client_max : server_max;
  if (lo > hi) return false;
  *negotiated = hi;
  return true;
}

const char* WireStatusName(WireStatus status) {
  switch (status) {
    case WireStatus::kOk: return "OK";
    case WireStatus::kRetryLater: return "RETRY_LATER";
    case WireStatus::kInvalidArgument: return "INVALID_ARGUMENT";
    case WireStatus::kNotFound: return "NOT_FOUND";
    case WireStatus::kOutOfRange: return "OUT_OF_RANGE";
    case WireStatus::kFailedPrecondition: return "FAILED_PRECONDITION";
    case WireStatus::kInternal: return "INTERNAL";
    case WireStatus::kShuttingDown: return "SHUTTING_DOWN";
  }
  return "unknown";
}

WireStatus WireStatusFromCode(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return WireStatus::kOk;
    case StatusCode::kInvalidArgument: return WireStatus::kInvalidArgument;
    case StatusCode::kNotFound: return WireStatus::kNotFound;
    case StatusCode::kOutOfRange: return WireStatus::kOutOfRange;
    case StatusCode::kFailedPrecondition:
      return WireStatus::kFailedPrecondition;
    case StatusCode::kInternal: return WireStatus::kInternal;
    case StatusCode::kIoError: return WireStatus::kInternal;
  }
  return WireStatus::kInternal;
}

// ---------------------------------------------------------------------------
// Encoders.

void EncodeHelloRequest(const HelloRequest& msg, std::string* out) {
  std::string payload;
  PutI32(msg.worker, &payload);
  if (msg.max_version >= 2) {
    // Extended v2 Hello: the client's version range rides after the worker
    // id. A v1-only client keeps the legacy 4-byte payload (and v1 frame)
    // above, byte-identical to pre-negotiation builds.
    PutU8(msg.min_version, &payload);
    PutU8(msg.max_version, &payload);
    PutFrame(MsgType::kHello, payload, out, 2);
    return;
  }
  PutFrame(MsgType::kHello, payload, out);
}

void EncodeHelloResponse(const HelloResponse& msg, std::string* out) {
  std::string payload;
  PutU8(static_cast<uint8_t>(msg.status), &payload);
  PutU64(msg.session, &payload);
  PutU64(msg.schema_fingerprint, &payload);
  PutU32(msg.num_rows, &payload);
  PutU32(static_cast<uint32_t>(msg.columns.size()), &payload);
  for (const WireColumn& col : msg.columns) {
    PutU8(col.categorical, &payload);
    PutU32(col.label_count, &payload);
  }
  if (msg.negotiated_version >= 2) {
    PutU8(msg.negotiated_version, &payload);
    PutFrame(MsgType::kHelloResp, payload, out, 2);
    return;
  }
  PutFrame(MsgType::kHelloResp, payload, out);
}

void EncodeLeaseRequest(const LeaseRequest& msg, std::string* out) {
  std::string payload;
  PutU64(msg.session, &payload);
  PutU32(msg.max_tasks, &payload);
  PutFrame(MsgType::kLease, payload, out);
}

void EncodeLeaseResponse(const LeaseResponse& msg, std::string* out) {
  std::string payload;
  PutU8(static_cast<uint8_t>(msg.status), &payload);
  PutU8(msg.drained, &payload);
  PutU32(static_cast<uint32_t>(msg.cells.size()), &payload);
  for (const CellRef& cell : msg.cells) {
    PutI32(cell.row, &payload);
    PutI32(cell.col, &payload);
  }
  PutFrame(MsgType::kLeaseResp, payload, out);
}

void EncodeSubmitBatchRequest(const SubmitBatchRequest& msg,
                              std::string* out) {
  std::string payload;
  PutU64(msg.session, &payload);
  PutU32(static_cast<uint32_t>(msg.items.size()), &payload);
  for (const auto& [cell, value] : msg.items) {
    PutI32(cell.row, &payload);
    PutI32(cell.col, &payload);
    PutValue(value, &payload);
  }
  PutFrame(MsgType::kSubmitBatch, payload, out);
}

void EncodeSubmitBatchResponse(const SubmitBatchResponse& msg,
                               std::string* out) {
  std::string payload;
  PutU8(static_cast<uint8_t>(msg.status), &payload);
  PutU32(static_cast<uint32_t>(msg.item_status.size()), &payload);
  for (uint8_t st : msg.item_status) PutU8(st, &payload);
  PutFrame(MsgType::kSubmitBatchResp, payload, out);
}

void EncodeRetractRequest(const RetractRequest& msg, std::string* out) {
  std::string payload;
  PutI32(msg.worker, &payload);
  PutI32(msg.cell.row, &payload);
  PutI32(msg.cell.col, &payload);
  PutFrame(MsgType::kRetract, payload, out);
}

void EncodeRetractResponse(const RetractResponse& msg, std::string* out) {
  std::string payload;
  PutU8(static_cast<uint8_t>(msg.status), &payload);
  PutFrame(MsgType::kRetractResp, payload, out);
}

void EncodeByeRequest(const ByeRequest& msg, std::string* out) {
  std::string payload;
  PutU64(msg.session, &payload);
  PutFrame(MsgType::kBye, payload, out);
}

void EncodeByeResponse(const ByeResponse& msg, std::string* out) {
  std::string payload;
  PutU8(static_cast<uint8_t>(msg.status), &payload);
  PutFrame(MsgType::kByeResp, payload, out);
}

void EncodeFinalizeRequest(const FinalizeRequest&, std::string* out) {
  PutFrame(MsgType::kFinalize, std::string(), out);
}

void EncodeFinalizeResponse(const FinalizeResponse& msg, std::string* out) {
  std::string payload;
  PutU8(static_cast<uint8_t>(msg.status), &payload);
  PutU64(msg.digest, &payload);
  PutU64(msg.answer_count, &payload);
  PutFrame(MsgType::kFinalizeResp, payload, out);
}

void EncodeStatsRequest(const StatsRequest&, std::string* out) {
  PutFrame(MsgType::kStats, std::string(), out);
}

void EncodeStatsResponse(const StatsResponse& msg, std::string* out) {
  std::string payload;
  PutU8(static_cast<uint8_t>(msg.status), &payload);
  PutU32(msg.tasks_open, &payload);
  PutU32(msg.tasks_assigned, &payload);
  PutU32(msg.tasks_answered, &payload);
  PutU32(msg.tasks_finalized, &payload);
  PutU64(msg.sessions_started, &payload);
  PutU64(msg.sessions_active, &payload);
  PutU64(msg.sessions_expired, &payload);
  PutU64(msg.answers_accepted, &payload);
  PutU64(msg.answers_rejected, &payload);
  PutU64(msg.answers_retracted, &payload);
  PutU64(msg.answers_restored, &payload);
  PutU64(msg.assignments, &payload);
  PutI64(msg.budget_spent, &payload);
  PutI64(msg.budget_remaining, &payload);
  PutU32(msg.engine_refreshes, &payload);
  PutU8(msg.drained, &payload);
  PutU64(msg.connections_accepted, &payload);
  PutU64(msg.connections_open, &payload);
  PutU64(msg.frames_processed, &payload);
  PutU64(msg.retry_later_total, &payload);
  PutU64(msg.write_queue_peak, &payload);
  PutU64(msg.http_requests, &payload);
  PutU64(msg.frame_errors, &payload);
  PutU64(msg.inflight_answers, &payload);
  PutU64(msg.inflight_budget, &payload);
  PutFrame(MsgType::kStatsResp, payload, out);
}

void EncodeShardDeltaRequest(const ShardDeltaRequest& msg, std::string* out) {
  std::string payload;
  PutU32(msg.shard, &payload);
  PutU64(msg.schema_fingerprint, &payload);
  PutU32(static_cast<uint32_t>(msg.seqs.size()), &payload);
  for (uint64_t seq : msg.seqs) PutU64(seq, &payload);
  PutU32(static_cast<uint32_t>(msg.retracted_seqs.size()), &payload);
  for (uint64_t seq : msg.retracted_seqs) PutU64(seq, &payload);
  PutU32(static_cast<uint32_t>(msg.block.size()), &payload);
  payload.append(msg.block);
  PutFrame(MsgType::kShardDelta, payload, out, 2);
}

void EncodeShardDeltaResponse(const ShardDeltaResponse& msg,
                              std::string* out) {
  std::string payload;
  PutU8(static_cast<uint8_t>(msg.status), &payload);
  PutU64(msg.answers_applied, &payload);
  PutU64(msg.retractions_applied, &payload);
  PutFrame(MsgType::kShardDeltaResp, payload, out, 2);
}

void EncodeLogGatherRequest(const LogGatherRequest&, std::string* out) {
  PutFrame(MsgType::kLogGather, std::string(), out, 3);
}

void EncodeLogGatherResponse(const LogGatherResponse& msg,
                             std::string* out) {
  std::string payload;
  PutU8(static_cast<uint8_t>(msg.status), &payload);
  PutU64(msg.answer_count, &payload);
  PutU32(static_cast<uint32_t>(msg.block.size()), &payload);
  payload.append(msg.block);
  PutFrame(MsgType::kLogGatherResp, payload, out, 3);
}

void EncodeApplyLeasesRequest(const ApplyLeasesRequest& msg,
                              std::string* out) {
  std::string payload;
  PutU64(msg.session, &payload);
  PutU32(static_cast<uint32_t>(msg.cells.size()), &payload);
  for (const CellRef& cell : msg.cells) {
    PutI32(cell.row, &payload);
    PutI32(cell.col, &payload);
  }
  PutFrame(MsgType::kApplyLeases, payload, out, 3);
}

void EncodeApplyLeasesResponse(const ApplyLeasesResponse& msg,
                               std::string* out) {
  std::string payload;
  PutU8(static_cast<uint8_t>(msg.status), &payload);
  PutFrame(MsgType::kApplyLeasesResp, payload, out, 3);
}

// ---------------------------------------------------------------------------
// Payload decoders.

Status DecodeHelloRequest(const void* data, size_t size, HelloRequest* out) {
  Reader r(data, size);
  if (!r.I32(&out->worker)) return Malformed("Hello");
  if (r.Done()) {
    // Legacy v1 Hello: no range on the wire means the client speaks
    // exactly version 1.
    out->min_version = 1;
    out->max_version = 1;
    return Status::Ok();
  }
  if (!r.U8(&out->min_version) || !r.U8(&out->max_version) || !r.Done()) {
    return Malformed("Hello version range");
  }
  return Status::Ok();
}

Status DecodeHelloResponse(const void* data, size_t size,
                           HelloResponse* out) {
  Reader r(data, size);
  uint8_t status;
  uint32_t count;
  if (!r.U8(&status) || !r.U64(&out->session) ||
      !r.U64(&out->schema_fingerprint) || !r.U32(&out->num_rows) ||
      !r.U32(&count)) {
    return Malformed("HelloResp");
  }
  if (static_cast<size_t>(count) * kMinColumnBytes > r.left) {
    return Malformed("HelloResp column count exceeds payload");
  }
  out->status = static_cast<WireStatus>(status);
  out->columns.clear();
  out->columns.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    WireColumn col;
    if (!r.U8(&col.categorical) || !r.U32(&col.label_count)) {
      return Malformed("HelloResp column");
    }
    out->columns.push_back(col);
  }
  if (r.Done()) {
    out->negotiated_version = 1;  // legacy v1 response
    return Status::Ok();
  }
  if (!r.U8(&out->negotiated_version) || !r.Done()) {
    return Malformed("HelloResp trailing bytes");
  }
  return Status::Ok();
}

Status DecodeLeaseRequest(const void* data, size_t size, LeaseRequest* out) {
  Reader r(data, size);
  if (!r.U64(&out->session) || !r.U32(&out->max_tasks) || !r.Done()) {
    return Malformed("Lease");
  }
  return Status::Ok();
}

Status DecodeLeaseResponse(const void* data, size_t size,
                           LeaseResponse* out) {
  Reader r(data, size);
  uint8_t status;
  uint32_t count;
  if (!r.U8(&status) || !r.U8(&out->drained) || !r.U32(&count)) {
    return Malformed("LeaseResp");
  }
  if (static_cast<size_t>(count) * kMinCellBytes > r.left) {
    return Malformed("LeaseResp cell count exceeds payload");
  }
  out->status = static_cast<WireStatus>(status);
  out->cells.clear();
  out->cells.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    int32_t row, col;
    if (!r.I32(&row) || !r.I32(&col)) return Malformed("LeaseResp cell");
    out->cells.push_back(CellRef{row, col});
  }
  if (!r.Done()) return Malformed("LeaseResp trailing bytes");
  return Status::Ok();
}

Status DecodeSubmitBatchRequest(const void* data, size_t size,
                                SubmitBatchRequest* out) {
  Reader r(data, size);
  uint32_t count;
  if (!r.U64(&out->session) || !r.U32(&count)) {
    return Malformed("SubmitBatch");
  }
  if (static_cast<size_t>(count) * kMinSubmitItemBytes > r.left) {
    return Malformed("SubmitBatch item count exceeds payload");
  }
  out->items.clear();
  out->items.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    int32_t row, col;
    Value value;
    if (!r.I32(&row) || !r.I32(&col) || !GetValue(&r, &value)) {
      return Malformed("SubmitBatch item");
    }
    out->items.emplace_back(CellRef{row, col}, value);
  }
  if (!r.Done()) return Malformed("SubmitBatch trailing bytes");
  return Status::Ok();
}

Status DecodeSubmitBatchResponse(const void* data, size_t size,
                                 SubmitBatchResponse* out) {
  Reader r(data, size);
  uint8_t status;
  uint32_t count;
  if (!r.U8(&status) || !r.U32(&count)) return Malformed("SubmitBatchResp");
  if (static_cast<size_t>(count) > r.left) {
    return Malformed("SubmitBatchResp status count exceeds payload");
  }
  out->status = static_cast<WireStatus>(status);
  out->item_status.clear();
  out->item_status.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint8_t st;
    if (!r.U8(&st)) return Malformed("SubmitBatchResp status");
    out->item_status.push_back(st);
  }
  if (!r.Done()) return Malformed("SubmitBatchResp trailing bytes");
  return Status::Ok();
}

Status DecodeRetractRequest(const void* data, size_t size,
                            RetractRequest* out) {
  Reader r(data, size);
  if (!r.I32(&out->worker) || !r.I32(&out->cell.row) ||
      !r.I32(&out->cell.col) || !r.Done()) {
    return Malformed("Retract");
  }
  return Status::Ok();
}

Status DecodeRetractResponse(const void* data, size_t size,
                             RetractResponse* out) {
  Reader r(data, size);
  uint8_t status;
  if (!r.U8(&status) || !r.Done()) return Malformed("RetractResp");
  out->status = static_cast<WireStatus>(status);
  return Status::Ok();
}

Status DecodeByeRequest(const void* data, size_t size, ByeRequest* out) {
  Reader r(data, size);
  if (!r.U64(&out->session) || !r.Done()) return Malformed("Bye");
  return Status::Ok();
}

Status DecodeByeResponse(const void* data, size_t size, ByeResponse* out) {
  Reader r(data, size);
  uint8_t status;
  if (!r.U8(&status) || !r.Done()) return Malformed("ByeResp");
  out->status = static_cast<WireStatus>(status);
  return Status::Ok();
}

Status DecodeFinalizeRequest(const void* data, size_t size,
                             FinalizeRequest*) {
  Reader r(data, size);
  if (!r.Done()) return Malformed("Finalize trailing bytes");
  return Status::Ok();
}

Status DecodeFinalizeResponse(const void* data, size_t size,
                              FinalizeResponse* out) {
  Reader r(data, size);
  uint8_t status;
  if (!r.U8(&status) || !r.U64(&out->digest) || !r.U64(&out->answer_count) ||
      !r.Done()) {
    return Malformed("FinalizeResp");
  }
  out->status = static_cast<WireStatus>(status);
  return Status::Ok();
}

Status DecodeStatsRequest(const void* data, size_t size, StatsRequest*) {
  Reader r(data, size);
  if (!r.Done()) return Malformed("Stats trailing bytes");
  return Status::Ok();
}

Status DecodeStatsResponse(const void* data, size_t size,
                           StatsResponse* out) {
  Reader r(data, size);
  uint8_t status;
  if (!r.U8(&status) || !r.U32(&out->tasks_open) ||
      !r.U32(&out->tasks_assigned) || !r.U32(&out->tasks_answered) ||
      !r.U32(&out->tasks_finalized) || !r.U64(&out->sessions_started) ||
      !r.U64(&out->sessions_active) || !r.U64(&out->sessions_expired) ||
      !r.U64(&out->answers_accepted) || !r.U64(&out->answers_rejected) ||
      !r.U64(&out->answers_retracted) || !r.U64(&out->answers_restored) ||
      !r.U64(&out->assignments) || !r.I64(&out->budget_spent) ||
      !r.I64(&out->budget_remaining) || !r.U32(&out->engine_refreshes) ||
      !r.U8(&out->drained) || !r.U64(&out->connections_accepted) ||
      !r.U64(&out->connections_open) || !r.U64(&out->frames_processed) ||
      !r.U64(&out->retry_later_total) || !r.U64(&out->write_queue_peak) ||
      !r.U64(&out->http_requests) || !r.U64(&out->frame_errors) ||
      !r.U64(&out->inflight_answers) || !r.U64(&out->inflight_budget) ||
      !r.Done()) {
    return Malformed("StatsResp");
  }
  out->status = static_cast<WireStatus>(status);
  return Status::Ok();
}

Status DecodeShardDeltaRequest(const void* data, size_t size,
                               ShardDeltaRequest* out) {
  Reader r(data, size);
  uint32_t seq_count, retract_count, block_len;
  if (!r.U32(&out->shard) || !r.U64(&out->schema_fingerprint) ||
      !r.U32(&seq_count)) {
    return Malformed("ShardDelta");
  }
  if (static_cast<size_t>(seq_count) * 8 > r.left) {
    return Malformed("ShardDelta seq count exceeds payload");
  }
  out->seqs.clear();
  out->seqs.reserve(seq_count);
  for (uint32_t i = 0; i < seq_count; ++i) {
    uint64_t seq;
    if (!r.U64(&seq)) return Malformed("ShardDelta seq");
    out->seqs.push_back(seq);
  }
  if (!r.U32(&retract_count)) return Malformed("ShardDelta");
  if (static_cast<size_t>(retract_count) * 8 > r.left) {
    return Malformed("ShardDelta retraction count exceeds payload");
  }
  out->retracted_seqs.clear();
  out->retracted_seqs.reserve(retract_count);
  for (uint32_t i = 0; i < retract_count; ++i) {
    uint64_t seq;
    if (!r.U64(&seq)) return Malformed("ShardDelta retraction");
    out->retracted_seqs.push_back(seq);
  }
  if (!r.U32(&block_len)) return Malformed("ShardDelta");
  if (static_cast<size_t>(block_len) > r.left) {
    return Malformed("ShardDelta block length exceeds payload");
  }
  out->block.assign(reinterpret_cast<const char*>(r.p), block_len);
  r.p += block_len;
  r.left -= block_len;
  if (!r.Done()) return Malformed("ShardDelta trailing bytes");
  return Status::Ok();
}

Status DecodeShardDeltaResponse(const void* data, size_t size,
                                ShardDeltaResponse* out) {
  Reader r(data, size);
  uint8_t status;
  if (!r.U8(&status) || !r.U64(&out->answers_applied) ||
      !r.U64(&out->retractions_applied) || !r.Done()) {
    return Malformed("ShardDeltaResp");
  }
  out->status = static_cast<WireStatus>(status);
  return Status::Ok();
}

Status DecodeLogGatherRequest(const void* data, size_t size,
                              LogGatherRequest*) {
  Reader r(data, size);
  if (!r.Done()) return Malformed("LogGather trailing bytes");
  return Status::Ok();
}

Status DecodeLogGatherResponse(const void* data, size_t size,
                               LogGatherResponse* out) {
  Reader r(data, size);
  uint8_t status;
  uint32_t block_len;
  if (!r.U8(&status) || !r.U64(&out->answer_count) || !r.U32(&block_len)) {
    return Malformed("LogGatherResp");
  }
  if (static_cast<size_t>(block_len) > r.left) {
    return Malformed("LogGatherResp block length exceeds payload");
  }
  out->status = static_cast<WireStatus>(status);
  out->block.assign(reinterpret_cast<const char*>(r.p), block_len);
  r.p += block_len;
  r.left -= block_len;
  if (!r.Done()) return Malformed("LogGatherResp trailing bytes");
  return Status::Ok();
}

Status DecodeApplyLeasesRequest(const void* data, size_t size,
                                ApplyLeasesRequest* out) {
  Reader r(data, size);
  uint32_t count;
  if (!r.U64(&out->session) || !r.U32(&count)) {
    return Malformed("ApplyLeases");
  }
  if (static_cast<size_t>(count) * kMinCellBytes > r.left) {
    return Malformed("ApplyLeases cell count exceeds payload");
  }
  out->cells.clear();
  out->cells.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    int32_t row, col;
    if (!r.I32(&row) || !r.I32(&col)) return Malformed("ApplyLeases cell");
    out->cells.push_back(CellRef{row, col});
  }
  if (!r.Done()) return Malformed("ApplyLeases trailing bytes");
  return Status::Ok();
}

Status DecodeApplyLeasesResponse(const void* data, size_t size,
                                 ApplyLeasesResponse* out) {
  Reader r(data, size);
  uint8_t status;
  if (!r.U8(&status) || !r.Done()) return Malformed("ApplyLeasesResp");
  out->status = static_cast<WireStatus>(status);
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Framing.

void FrameDecoder::Feed(const void* data, size_t n) {
  // Compact lazily: only when the dead prefix dominates, so steady-state
  // feeding is append-only.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(static_cast<const char*>(data), n);
}

FrameDecoder::Result FrameDecoder::Next(Frame* out, std::string* error) {
  const uint8_t* base =
      reinterpret_cast<const uint8_t*>(buffer_.data()) + consumed_;
  size_t avail = buffer_.size() - consumed_;
  size_t consumed = 0;
  switch (ParseFrame(base, avail, max_payload_, out, &consumed, error)) {
    case ParseVerdict::kFrame:
      consumed_ += consumed;
      return Result::kFrame;
    case ParseVerdict::kNeedMore:
      return Result::kNeedMore;
    case ParseVerdict::kCorrupt:
      return Result::kCorrupt;
  }
  return Result::kCorrupt;
}

Status DecodeFrameStream(const void* data, size_t size,
                         FrameStreamReplay* out, size_t max_payload) {
  out->frames.clear();
  out->truncated = false;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  size_t left = size;
  while (left > 0) {
    Frame frame;
    size_t consumed = 0;
    ParseVerdict verdict =
        ParseFrame(p, left, max_payload, &frame, &consumed, nullptr);
    if (verdict != ParseVerdict::kFrame) {
      // Torn tail or corruption: keep the clean prefix, drop the rest. A
      // framed stream cannot be resynchronized past a bad frame.
      out->truncated = true;
      break;
    }
    out->frames.push_back(std::move(frame));
    p += consumed;
    left -= consumed;
  }
  return Status::Ok();
}

}  // namespace tcrowd::net
