#include "net/server.h"

#include <errno.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/epoll.h>
#endif

#include <algorithm>
#include <utility>
#include <vector>

#include "inference/segment_codec.h"
#include "platform/event_log.h"

namespace tcrowd::net {
namespace {

/// Longest HTTP request head we accept before dropping the connection.
constexpr size_t kMaxHttpHead = 8u << 10;

std::string HttpResponse(int code, const char* reason,
                         const std::string& body,
                         const char* content_type) {
  std::string out = "HTTP/1.1 " + std::to_string(code) + " " + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

struct Server::Connection {
  enum class Mode {
    kSniff,   ///< first bytes pending: binary frames or HTTP?
    kFrames,  ///< TCNP protocol connection
    kHttp,    ///< plain-text metrics scrape
  };

  OwnedFd fd;
  Mode mode = Mode::kSniff;
  FrameDecoder decoder;
  std::string sniff;  ///< bytes buffered while mode is undecided / HTTP head
  std::string out;    ///< queued response bytes
  size_t out_off = 0;
  bool reads_paused = false;     ///< write queue past the high watermark
  bool close_after_flush = false;
  bool more_frames = false;  ///< whole frames may still be buffered (cap hit)
  /// Protocol version Hello negotiated for this connection (1 until a v2
  /// Hello succeeds); gates the v2-only message kinds.
  uint8_t negotiated_version = 1;
};

Server::Server(service::ServingBackend* service, ServerOptions options)
    : service_(service), options_(options) {
  if (options_.inflight_budget > 0) {
    inflight_budget_ = options_.inflight_budget;
  } else if (options_.inflight_budget == 0) {
    inflight_budget_ =
        static_cast<int64_t>(options_.inflight_budget_factor) *
        std::max(1, service_->staleness_threshold());
  } else {
    inflight_budget_ = -1;  // shedding disabled
  }
}

Server::~Server() = default;

Status Server::Listen(const std::string& host, uint16_t port) {
  Status st = ListenTcp(host, port, options_.backlog, &listen_fd_, &port_);
  if (!st.ok()) return st;
  int pipefd[2];
  if (::pipe(pipefd) != 0) {
    return Status::IoError(std::string("pipe: ") + strerror(errno));
  }
  wake_read_ = OwnedFd(pipefd[0]);
  wake_write_ = OwnedFd(pipefd[1]);
  st = SetNonBlocking(wake_read_.get());
  if (st.ok()) st = SetNonBlocking(wake_write_.get());
  return st;
}

void Server::Stop() {
  stop_.store(true, std::memory_order_release);
  if (wake_write_.valid()) {
    // Only async-signal-safe calls here: Stop() runs from signal handlers.
    char byte = 'x';
    [[maybe_unused]] ssize_t ignored = ::write(wake_write_.get(), &byte, 1);
  }
}

NetStats Server::net_stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

bool Server::wants_write(const Connection& conn) const {
  return conn.out.size() > conn.out_off;
}

bool Server::paused(const Connection& conn) const {
  return conn.reads_paused;
}

void Server::QueueResponse(Connection* conn, std::string frame) {
  if (conn->out_off > 0 && conn->out_off >= conn->out.size() / 2) {
    conn->out.erase(0, conn->out_off);
    conn->out_off = 0;
  }
  conn->out += frame;
  size_t pending = conn->out.size() - conn->out_off;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.write_queue_peak = std::max<uint64_t>(stats_.write_queue_peak,
                                                 pending);
  }
  if (pending > options_.write_queue_high) conn->reads_paused = true;
}

void Server::AcceptPending() {
  for (;;) {
    int fd = ::accept(listen_fd_.get(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (no more pending) or transient accept failure
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = OwnedFd(fd);
    if (!SetNonBlocking(fd).ok()) continue;  // conn closes fd on scope exit
    (void)SetNoDelay(fd);  // best-effort; latency tweak only
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.connections_accepted;
      ++stats_.connections_open;
    }
    connections_.emplace(fd, std::move(conn));
  }
}

void Server::CloseConnection(int fd) {
  if (connections_.erase(fd) > 0) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    --stats_.connections_open;
  }
}

bool Server::HandleWritable(Connection* conn) {
  while (wants_write(*conn)) {
    ssize_t wrote =
        ::send(conn->fd.get(), conn->out.data() + conn->out_off,
               conn->out.size() - conn->out_off, MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      return false;  // peer vanished
    }
    conn->out_off += static_cast<size_t>(wrote);
  }
  conn->out.clear();
  conn->out_off = 0;
  // Flushed below the low watermark: the slow reader caught up, resume
  // reading it.
  conn->reads_paused = false;
  return !conn->close_after_flush;
}

bool Server::Dispatch(Connection* conn, const Frame& frame) {
  const std::string& p = frame.payload;
  std::string resp;
  switch (frame.type) {
    case MsgType::kHello: {
      HelloRequest req;
      if (!DecodeHelloRequest(p.data(), p.size(), &req).ok()) return false;
      HelloResponse out;
      uint8_t negotiated = 0;
      if (!NegotiateProtocolVersion(req.min_version, req.max_version,
                                    kProtocolVersionMin, kProtocolVersionMax,
                                    &negotiated)) {
        // Disjoint version ranges: no session is opened. The refusal ships
        // as a v1 frame — the one layout every peer past or future decodes.
        out.status = WireStatus::kFailedPrecondition;
        out.negotiated_version = 1;
        EncodeHelloResponse(out, &resp);
        break;
      }
      conn->negotiated_version = negotiated;
      out.negotiated_version = negotiated;
      out.session =
          static_cast<uint64_t>(service_->StartSession(req.worker));
      out.schema_fingerprint =
          SchemaFingerprint(service_->schema(), service_->num_rows());
      out.num_rows = static_cast<uint32_t>(service_->num_rows());
      for (const ColumnSpec& col : service_->schema().columns()) {
        WireColumn wire;
        wire.categorical = col.type == ColumnType::kCategorical ? 1 : 0;
        wire.label_count = static_cast<uint32_t>(col.num_labels());
        out.columns.push_back(wire);
      }
      EncodeHelloResponse(out, &resp);
      break;
    }
    case MsgType::kLease: {
      LeaseRequest req;
      if (!DecodeLeaseRequest(p.data(), p.size(), &req).ok()) return false;
      LeaseResponse out;
      out.cells = service_->RequestTasks(
          static_cast<service::ServingBackend::SessionId>(req.session),
          static_cast<int>(std::min<uint32_t>(req.max_tasks, 1u << 16)));
      out.drained = service_->Drained() ? 1 : 0;
      EncodeLeaseResponse(out, &resp);
      break;
    }
    case MsgType::kSubmitBatch: {
      SubmitBatchRequest req;
      if (!DecodeSubmitBatchRequest(p.data(), p.size(), &req).ok()) {
        return false;
      }
      SubmitBatchResponse out;
      // Admission control: while EM refresh lags ingest past the in-flight
      // budget, shed the WHOLE batch before the service sees it. Nothing
      // is booked, so the client's identical resend keeps the accepted
      // history — and therefore the finalized truths — unchanged.
      if (inflight_budget_ >= 0 &&
          service_->answers_since_refresh() >= inflight_budget_) {
        out.status = WireStatus::kRetryLater;
        // A shed must also schedule the refresh that clears the meter:
        // once ingest stalls, nothing else resets answers_since_refresh,
        // and RETRY_LATER would never resolve. RequestRefresh coalesces
        // with an in-flight pass and no-ops below min_answers_for_fit.
        service_->RequestRefresh();
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.retry_later_total;
      } else {
        std::vector<Status> verdicts =
            service_->SubmitAnswerBatch(
                static_cast<service::ServingBackend::SessionId>(req.session),
                req.items);
        out.item_status.reserve(verdicts.size());
        for (const Status& v : verdicts) {
          out.item_status.push_back(
              static_cast<uint8_t>(WireStatusFromCode(v.code())));
        }
      }
      EncodeSubmitBatchResponse(out, &resp);
      break;
    }
    case MsgType::kRetract: {
      RetractRequest req;
      if (!DecodeRetractRequest(p.data(), p.size(), &req).ok()) return false;
      RetractResponse out;
      out.status =
          WireStatusFromCode(service_->RetractAnswer(req.worker, req.cell)
                                 .code());
      EncodeRetractResponse(out, &resp);
      break;
    }
    case MsgType::kBye: {
      ByeRequest req;
      if (!DecodeByeRequest(p.data(), p.size(), &req).ok()) return false;
      ByeResponse out;
      out.status = WireStatusFromCode(
          service_->EndSession(
                      static_cast<service::ServingBackend::SessionId>(
                          req.session))
              .code());
      EncodeByeResponse(out, &resp);
      break;
    }
    case MsgType::kFinalize: {
      FinalizeRequest req;
      if (!DecodeFinalizeRequest(p.data(), p.size(), &req).ok()) {
        return false;
      }
      // Blocks the loop for a full EM fit; Finalize is the run's terminal
      // request, so stalling other connections here is the semantics.
      InferenceResult result = service_->Finalize();
      FinalizeResponse out;
      out.digest = TruthDigest(result.estimated_truth);
      out.answer_count = service_->num_answers();
      EncodeFinalizeResponse(out, &resp);
      break;
    }
    case MsgType::kStats: {
      StatsRequest req;
      if (!DecodeStatsRequest(p.data(), p.size(), &req).ok()) return false;
      service::ServiceStats s = service_->Stats();
      StatsResponse out;
      out.tasks_open = static_cast<uint32_t>(s.tasks_open);
      out.tasks_assigned = static_cast<uint32_t>(s.tasks_assigned);
      out.tasks_answered = static_cast<uint32_t>(s.tasks_answered);
      out.tasks_finalized = static_cast<uint32_t>(s.tasks_finalized);
      out.sessions_started = static_cast<uint64_t>(s.sessions_started);
      out.sessions_active = static_cast<uint64_t>(s.sessions_active);
      out.sessions_expired = static_cast<uint64_t>(s.sessions_expired);
      out.answers_accepted = static_cast<uint64_t>(s.answers_accepted);
      out.answers_rejected = static_cast<uint64_t>(s.answers_rejected);
      out.answers_retracted = static_cast<uint64_t>(s.answers_retracted);
      out.answers_restored = static_cast<uint64_t>(s.answers_restored);
      out.assignments = static_cast<uint64_t>(s.assignments);
      out.budget_spent = s.budget_spent;
      out.budget_remaining = s.budget_remaining;
      out.engine_refreshes = static_cast<uint32_t>(s.engine_refreshes);
      out.drained = service_->Drained() ? 1 : 0;
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        out.connections_accepted = stats_.connections_accepted;
        out.connections_open = stats_.connections_open;
        out.frames_processed = stats_.frames_processed;
        out.retry_later_total = stats_.retry_later_total;
        out.write_queue_peak = stats_.write_queue_peak;
        out.http_requests = stats_.http_requests;
        out.frame_errors = stats_.frame_errors;
      }
      out.inflight_answers = static_cast<uint64_t>(
          std::max<int64_t>(0, service_->answers_since_refresh()));
      out.inflight_budget =
          inflight_budget_ < 0 ? 0
                               : static_cast<uint64_t>(inflight_budget_);
      EncodeStatsResponse(out, &resp);
      break;
    }
    case MsgType::kApplyLeases: {
      ApplyLeasesRequest req;
      if (!DecodeApplyLeasesRequest(p.data(), p.size(), &req).ok()) {
        return false;
      }
      ApplyLeasesResponse out;
      if (conn->negotiated_version < 3) {
        // v3 vocabulary on an older session: refuse cleanly so the sender
        // can tell a version gap from corruption.
        out.status = WireStatus::kFailedPrecondition;
      } else {
        out.status = WireStatusFromCode(
            service_->ApplyRecordedLeases(
                        static_cast<service::ServingBackend::SessionId>(
                            req.session),
                        req.cells)
                .code());
      }
      EncodeApplyLeasesResponse(out, &resp);
      break;
    }
    case MsgType::kLogGather: {
      LogGatherRequest req;
      if (!DecodeLogGatherRequest(p.data(), p.size(), &req).ok()) {
        return false;
      }
      LogGatherResponse out;
      if (conn->negotiated_version < 3) {
        out.status = WireStatus::kFailedPrecondition;
      } else {
        std::vector<Answer> log = service_->GatherAnswerLog();
        EncodeAnswerBlock(log.data(), log.size(), &out.block);
        out.answer_count = static_cast<uint64_t>(log.size());
        if (out.block.size() + 64 > kMaxFramePayload) {
          // The whole log must fit one frame (~40k answers); past that the
          // gather seam refuses rather than truncating silently.
          out.status = WireStatus::kOutOfRange;
          out.block.clear();
          out.answer_count = 0;
        }
      }
      EncodeLogGatherResponse(out, &resp);
      break;
    }
    case MsgType::kShardDelta: {
      ShardDeltaRequest req;
      if (!DecodeShardDeltaRequest(p.data(), p.size(), &req).ok()) {
        return false;
      }
      ShardDeltaResponse out;
      if (conn->negotiated_version < 2 || !options_.shard_delta_handler) {
        // Either the peer never negotiated v2 or this server has no
        // replica role; answer instead of dropping so the sender can tell
        // refusal from corruption.
        out.status = WireStatus::kFailedPrecondition;
      } else {
        Status st = options_.shard_delta_handler(req, &out);
        if (!st.ok() && out.status == WireStatus::kOk) {
          out.status = WireStatusFromCode(st.code());
        }
      }
      EncodeShardDeltaResponse(out, &resp);
      break;
    }
    default:
      // Response types are valid frames but nonsensical as requests.
      return false;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.frames_processed;
  }
  QueueResponse(conn, std::move(resp));
  return true;
}

bool Server::ServeFrames(Connection* conn) {
  conn->more_frames = false;
  for (int served = 0; served < options_.max_frames_per_wake; ++served) {
    if (paused(*conn)) {
      // Queue past the high watermark: hold remaining frames buffered
      // until the peer drains what it already owes us.
      conn->more_frames = true;
      return true;
    }
    Frame frame;
    std::string error;
    switch (conn->decoder.Next(&frame, &error)) {
      case FrameDecoder::Result::kFrame:
        if (!Dispatch(conn, frame)) {
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.frame_errors;
          return false;
        }
        break;
      case FrameDecoder::Result::kNeedMore:
        return true;
      case FrameDecoder::Result::kCorrupt: {
        // House rule: hostile bytes never crash; a stream that lost
        // framing is dropped — no resynchronization is possible.
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.frame_errors;
        return false;
      }
    }
  }
  // Fairness cap hit: yield to other connections, revisit next wake.
  conn->more_frames = true;
  return true;
}

bool Server::ServeHttp(Connection* conn) {
  size_t head_end = conn->sniff.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    return conn->sniff.size() <= kMaxHttpHead;  // keep reading the head
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.http_requests;
  }
  size_t line_end = conn->sniff.find("\r\n");
  const std::string request_line = conn->sniff.substr(0, line_end);
  std::string body;
  if (request_line.rfind("GET /metrics", 0) == 0) {
    body = service_->metrics().FormatPrometheus();
    NetStats net = net_stats();
    body += "# TYPE tcrowd_net_connections_accepted counter\n";
    body += "tcrowd_net_connections_accepted " +
            std::to_string(net.connections_accepted) + "\n";
    body += "# TYPE tcrowd_net_connections_open gauge\n";
    body += "tcrowd_net_connections_open " +
            std::to_string(net.connections_open) + "\n";
    body += "# TYPE tcrowd_net_frames_processed counter\n";
    body += "tcrowd_net_frames_processed " +
            std::to_string(net.frames_processed) + "\n";
    body += "# TYPE tcrowd_net_retry_later_total counter\n";
    body += "tcrowd_net_retry_later_total " +
            std::to_string(net.retry_later_total) + "\n";
    body += "# TYPE tcrowd_net_write_queue_peak gauge\n";
    body += "tcrowd_net_write_queue_peak " +
            std::to_string(net.write_queue_peak) + "\n";
    body += "# TYPE tcrowd_net_frame_errors counter\n";
    body +=
        "tcrowd_net_frame_errors " + std::to_string(net.frame_errors) + "\n";
    QueueResponse(conn, HttpResponse(200, "OK", body,
                                     "text/plain; version=0.0.4"));
  } else {
    QueueResponse(conn,
                  HttpResponse(404, "Not Found", "not found\n",
                               "text/plain"));
  }
  conn->close_after_flush = true;
  conn->sniff.clear();
  return true;
}

bool Server::HandleReadable(Connection* conn) {
  char buf[16 << 10];
  for (;;) {
    if (paused(*conn)) return true;  // flow control: stop consuming
    ssize_t got = ::read(conn->fd.get(), buf, sizeof(buf));
    if (got < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      return false;
    }
    if (got == 0) {
      // Peer closed. Keep the connection only to flush queued responses.
      conn->close_after_flush = true;
      return wants_write(*conn);
    }
    size_t n = static_cast<size_t>(got);
    switch (conn->mode) {
      case Connection::Mode::kSniff: {
        conn->sniff.append(buf, n);
        if (conn->sniff.size() < 4) break;  // need more to decide
        if (memcmp(conn->sniff.data(), "TCNP", 4) == 0) {
          conn->mode = Connection::Mode::kFrames;
          conn->decoder.Feed(conn->sniff.data(), conn->sniff.size());
          conn->sniff.clear();
          conn->sniff.shrink_to_fit();
          if (!ServeFrames(conn)) return false;
        } else {
          conn->mode = Connection::Mode::kHttp;
          if (!ServeHttp(conn)) return false;
        }
        break;
      }
      case Connection::Mode::kFrames:
        conn->decoder.Feed(buf, n);
        if (!ServeFrames(conn)) return false;
        break;
      case Connection::Mode::kHttp:
        if (conn->close_after_flush) break;  // ignore pipelined extra bytes
        conn->sniff.append(buf, n);
        if (!ServeHttp(conn)) return false;
        break;
    }
  }
}

Status Server::Run() {
  if (!listen_fd_.valid()) {
    return Status::FailedPrecondition("Listen() must succeed before Run()");
  }
  running_.store(true, std::memory_order_release);
  Status st;
#ifdef __linux__
  if (!options_.force_poll) {
    st = RunEpoll();
  } else {
    st = RunPoll();
  }
#else
  st = RunPoll();
#endif
  connections_.clear();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.connections_open = 0;
  }
  running_.store(false, std::memory_order_release);
  return st;
}

Status Server::RunPoll() {
  std::vector<pollfd> fds;
  std::vector<int> order;  ///< fds[i + 2] belongs to connection order[i]
  while (!stop_.load(std::memory_order_acquire)) {
    fds.clear();
    order.clear();
    fds.push_back({listen_fd_.get(), POLLIN, 0});
    fds.push_back({wake_read_.get(), POLLIN, 0});
    bool backlog = false;
    for (auto& [fd, conn] : connections_) {
      short events = 0;
      if (!paused(*conn) && !conn->close_after_flush) events |= POLLIN;
      if (wants_write(*conn)) events |= POLLOUT;
      fds.push_back({fd, events, 0});
      order.push_back(fd);
      if (conn->more_frames && !paused(*conn)) backlog = true;
    }
    int rc = ::poll(fds.data(), fds.size(), backlog ? 0 : -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("poll: ") + strerror(errno));
    }
    if ((fds[1].revents & POLLIN) != 0) {
      char drain[64];
      while (::read(wake_read_.get(), drain, sizeof(drain)) > 0) {
      }
    }
    if (stop_.load(std::memory_order_acquire)) break;
    if ((fds[0].revents & POLLIN) != 0) AcceptPending();
    std::vector<int> dead;
    for (size_t i = 0; i < order.size(); ++i) {
      auto it = connections_.find(order[i]);
      if (it == connections_.end()) continue;
      Connection* conn = it->second.get();
      short revents = fds[i + 2].revents;
      bool alive = true;
      if ((revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
          (revents & POLLIN) == 0 && !wants_write(*conn)) {
        alive = false;
      }
      if (alive && (revents & POLLOUT) != 0) alive = HandleWritable(conn);
      if (alive && (revents & (POLLIN | POLLHUP)) != 0) {
        alive = HandleReadable(conn);
      }
      // Serve frames left buffered by the fairness cap or a lifted pause.
      if (alive && conn->more_frames && !paused(*conn)) {
        alive = ServeFrames(conn);
      }
      if (alive && conn->close_after_flush && !wants_write(*conn)) {
        alive = false;
      }
      if (!alive) dead.push_back(order[i]);
    }
    for (int fd : dead) CloseConnection(fd);
  }
  return Status::Ok();
}

#ifdef __linux__
void Server::UpdateEpoll(int epfd, Connection* conn) {
  epoll_event ev;
  memset(&ev, 0, sizeof(ev));
  ev.data.fd = conn->fd.get();
  if (!paused(*conn) && !conn->close_after_flush) ev.events |= EPOLLIN;
  if (wants_write(*conn)) ev.events |= EPOLLOUT;
  ::epoll_ctl(epfd, EPOLL_CTL_MOD, conn->fd.get(), &ev);
}

Status Server::RunEpoll() {
  OwnedFd epfd(::epoll_create1(0));
  if (!epfd.valid()) {
    return Status::IoError(std::string("epoll_create1: ") + strerror(errno));
  }
  epoll_event ev;
  memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_.get();
  if (::epoll_ctl(epfd.get(), EPOLL_CTL_ADD, listen_fd_.get(), &ev) != 0) {
    return Status::IoError(std::string("epoll_ctl: ") + strerror(errno));
  }
  ev.data.fd = wake_read_.get();
  if (::epoll_ctl(epfd.get(), EPOLL_CTL_ADD, wake_read_.get(), &ev) != 0) {
    return Status::IoError(std::string("epoll_ctl: ") + strerror(errno));
  }
  std::vector<epoll_event> events(128);
  while (!stop_.load(std::memory_order_acquire)) {
    bool backlog = false;
    for (auto& [fd, conn] : connections_) {
      if (conn->more_frames && !paused(*conn)) {
        backlog = true;
        break;
      }
    }
    int rc = ::epoll_wait(epfd.get(), events.data(),
                          static_cast<int>(events.size()),
                          backlog ? 0 : -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("epoll_wait: ") + strerror(errno));
    }
    if (stop_.load(std::memory_order_acquire)) break;
    std::vector<int> dead;
    for (int i = 0; i < rc; ++i) {
      int fd = events[i].data.fd;
      uint32_t revents = events[i].events;
      if (fd == wake_read_.get()) {
        char drain[64];
        while (::read(wake_read_.get(), drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      if (fd == listen_fd_.get()) {
        size_t before = connections_.size();
        AcceptPending();
        if (connections_.size() > before) {
          // Register the newcomers.
          for (auto& [cfd, conn] : connections_) {
            epoll_event add;
            memset(&add, 0, sizeof(add));
            add.events = EPOLLIN;
            add.data.fd = cfd;
            if (::epoll_ctl(epfd.get(), EPOLL_CTL_ADD, cfd, &add) != 0 &&
                errno != EEXIST) {
              dead.push_back(cfd);
            }
            (void)conn;
          }
        }
        continue;
      }
      auto it = connections_.find(fd);
      if (it == connections_.end()) continue;
      Connection* conn = it->second.get();
      bool alive = true;
      if ((revents & (EPOLLERR | EPOLLHUP)) != 0 &&
          (revents & EPOLLIN) == 0 && !wants_write(*conn)) {
        alive = false;
      }
      if (alive && (revents & EPOLLOUT) != 0) alive = HandleWritable(conn);
      if (alive && (revents & (EPOLLIN | EPOLLHUP)) != 0) {
        alive = HandleReadable(conn);
      }
      if (alive && conn->close_after_flush && !wants_write(*conn)) {
        alive = false;
      }
      if (!alive) {
        dead.push_back(fd);
      } else {
        UpdateEpoll(epfd.get(), conn);
      }
    }
    // Frames left buffered by the fairness cap or a lifted pause: serve a
    // round even though the socket reported no fresh bytes.
    for (auto& [fd, conn] : connections_) {
      if (std::find(dead.begin(), dead.end(), fd) != dead.end()) continue;
      if (conn->more_frames && !paused(*conn)) {
        if (!ServeFrames(conn.get())) {
          dead.push_back(fd);
        } else if (conn->close_after_flush && !wants_write(*conn)) {
          dead.push_back(fd);
        } else {
          UpdateEpoll(epfd.get(), conn.get());
        }
      }
    }
    for (int fd : dead) CloseConnection(fd);
  }
  return Status::Ok();
}
#endif  // __linux__

}  // namespace tcrowd::net
