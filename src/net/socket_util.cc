#include "net/socket_util.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>

namespace tcrowd::net {
namespace {

Status ErrnoStatus(const char* op) {
  return Status::IoError(std::string(op) + ": " + strerror(errno));
}

Status ResolveV4(const std::string& host, uint16_t port, sockaddr_in* addr) {
  memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  const std::string target = host.empty() ? "127.0.0.1" : host;
  if (target == "localhost") {
    addr->sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    return Status::Ok();
  }
  if (inet_pton(AF_INET, target.c_str(), &addr->sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + target);
  }
  return Status::Ok();
}

}  // namespace

void OwnedFd::Reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

Status ListenTcp(const std::string& host, uint16_t port, int backlog,
                 OwnedFd* out, uint16_t* bound_port) {
  sockaddr_in addr;
  Status st = ResolveV4(host, port, &addr);
  if (!st.ok()) return st;
  OwnedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return ErrnoStatus("socket");
  int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) !=
      0) {
    return ErrnoStatus("setsockopt(SO_REUSEADDR)");
  }
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return ErrnoStatus("bind");
  }
  if (::listen(fd.get(), backlog) != 0) return ErrnoStatus("listen");
  st = SetNonBlocking(fd.get());
  if (!st.ok()) return st;
  if (bound_port != nullptr) {
    sockaddr_in bound;
    socklen_t len = sizeof(bound);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) !=
        0) {
      return ErrnoStatus("getsockname");
    }
    *bound_port = ntohs(bound.sin_port);
  }
  *out = std::move(fd);
  return Status::Ok();
}

Status ConnectTcp(const std::string& host, uint16_t port, OwnedFd* out) {
  sockaddr_in addr;
  Status st = ResolveV4(host, port, &addr);
  if (!st.ok()) return st;
  OwnedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return ErrnoStatus("socket");
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) return ErrnoStatus("connect");
  st = SetNoDelay(fd.get());
  if (!st.ok()) return st;
  *out = std::move(fd);
  return Status::Ok();
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return ErrnoStatus("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return ErrnoStatus("fcntl(F_SETFL)");
  }
  return Status::Ok();
}

Status SetNoDelay(int fd) {
  int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) != 0) {
    return ErrnoStatus("setsockopt(TCP_NODELAY)");
  }
  return Status::Ok();
}

Status WriteAll(int fd, const void* data, size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    // MSG_NOSIGNAL: a peer that vanished mid-write must surface as EPIPE,
    // not kill the process with SIGPIPE.
    ssize_t wrote = ::send(fd, p, n, MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("send");
    }
    if (wrote == 0) return Status::IoError("send: zero-length progress");
    p += wrote;
    n -= static_cast<size_t>(wrote);
  }
  return Status::Ok();
}

Status ReadSome(int fd, void* buf, size_t cap, size_t* n_read) {
  for (;;) {
    ssize_t got = ::read(fd, buf, cap);
    if (got < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("read");
    }
    *n_read = static_cast<size_t>(got);
    return Status::Ok();
  }
}

Status ParseHostPort(const std::string& spec, std::string* host,
                     uint16_t* port) {
  size_t colon = spec.rfind(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("expected HOST:PORT, got: " + spec);
  }
  const std::string port_text = spec.substr(colon + 1);
  char* end = nullptr;
  long value = strtol(port_text.c_str(), &end, 10);
  if (port_text.empty() || end == nullptr || *end != '\0' || value < 0 ||
      value > 65535) {
    return Status::InvalidArgument("bad port in: " + spec);
  }
  *host = spec.substr(0, colon);
  *port = static_cast<uint16_t>(value);
  return Status::Ok();
}

}  // namespace tcrowd::net
