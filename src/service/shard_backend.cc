#include "service/shard_backend.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>

#include "inference/segment_codec.h"
#include "service/shard_router.h"

namespace tcrowd::service {

namespace {

/// Sub-shard checkpoint directory: "<root>/shard-NNN".
std::string ShardDirectory(const std::string& root, int shard) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "/shard-%03d", shard);
  return root + buf;
}

/// Rebuilds the Status a shard daemon encoded per item (the byte is a
/// StatusCode, see net::SubmitBatchResponse::item_status).
Status StatusFromCodeByte(uint8_t code) {
  switch (static_cast<StatusCode>(code)) {
    case StatusCode::kOk:
      return Status::Ok();
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument("rejected by shard daemon");
    case StatusCode::kNotFound:
      return Status::NotFound("rejected by shard daemon");
    case StatusCode::kOutOfRange:
      return Status::OutOfRange("rejected by shard daemon");
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition("rejected by shard daemon");
    case StatusCode::kInternal:
      return Status::Internal("rejected by shard daemon");
    case StatusCode::kIoError:
      return Status::IoError("rejected by shard daemon");
  }
  return Status::Internal("shard daemon sent an unknown status code");
}

}  // namespace

ServiceConfig DeriveShardServiceConfig(const ServiceConfig& base,
                                       const Schema& schema, int num_rows,
                                       const ShardRange& range,
                                       int num_shards, int shard) {
  ServiceConfig cfg = base;
  // The router owns session lifecycle and lease expiry globally; shards
  // must never expire a sub-session on their own.
  cfg.session_lease_timeout_seconds = 0.0;
  // Record/replay stays a single-shard feature (the global event order
  // lives above the shards); never let a shard double-record.
  cfg.recorder = nullptr;
  cfg.inference.recorder = nullptr;
  // De-correlate the per-shard routing policies.
  cfg.router.seed = base.router.seed + static_cast<uint64_t>(shard);
  if (cfg.inference.checkpoint.enabled()) {
    cfg.inference.checkpoint.directory =
        ShardDirectory(base.inference.checkpoint.directory, shard);
    // Shard dirs of the same table are shape-identical; the namespace tag
    // keeps shard i from silently restoring shard j's log.
    cfg.inference.checkpoint.namespace_tag =
        (static_cast<uint64_t>(num_shards) << 48) |
        (static_cast<uint64_t>(shard) << 32) |
        static_cast<uint32_t>(range.row_begin);
  }
  if (base.max_total_answers >= 0) {
    // Split an explicit budget proportionally to cells owned, exactly
    // (cumulative rounding; shares sum to the global budget).
    int64_t total = base.max_total_answers;
    int64_t cells_before =
        static_cast<int64_t>(range.row_begin) * schema.num_columns();
    int64_t cells_through =
        static_cast<int64_t>(range.row_end) * schema.num_columns();
    int64_t total_cells =
        static_cast<int64_t>(num_rows) * schema.num_columns();
    cfg.max_total_answers = total * cells_through / total_cells -
                            total * cells_before / total_cells;
  }
  return cfg;
}

Status StatusFromWire(net::WireStatus status, const char* what) {
  std::string msg = std::string(what) + ": " + net::WireStatusName(status);
  switch (status) {
    case net::WireStatus::kOk:
      return Status::Ok();
    case net::WireStatus::kInvalidArgument:
      return Status::InvalidArgument(std::move(msg));
    case net::WireStatus::kNotFound:
      return Status::NotFound(std::move(msg));
    case net::WireStatus::kOutOfRange:
      return Status::OutOfRange(std::move(msg));
    case net::WireStatus::kInternal:
      return Status::Internal(std::move(msg));
    case net::WireStatus::kRetryLater:
    case net::WireStatus::kFailedPrecondition:
    case net::WireStatus::kShuttingDown:
      return Status::FailedPrecondition(std::move(msg));
  }
  return Status::Internal(std::move(msg));
}

// ---------------------------------------------------------------------------
// RemoteShardBackend.

RemoteShardBackend::RemoteShardBackend(Options options)
    : options_(std::move(options)), client_(options_.client) {
  Status st;
  int attempts = std::max(1, options_.connect_attempts);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    st = client_.Connect(options_.host, options_.port);
    if (st.ok()) break;
    if (attempt + 1 < attempts) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.connect_retry_millis));
    }
  }
  if (!st.ok()) {
    health_ = st;
    return;
  }
  // Probe Hello: pin the connection's protocol version and verify the
  // daemon serves the expected sub-table before the router trusts it.
  net::HelloRequest req;
  req.worker = 0;
  req.min_version = net::kProtocolVersionMin;
  req.max_version = net::kProtocolVersionMax;
  net::HelloResponse resp;
  st = client_.Hello(req, &resp);
  if (!st.ok()) {
    health_ = st;
    return;
  }
  if (resp.status != net::WireStatus::kOk) {
    health_ = StatusFromWire(resp.status, "shard daemon Hello");
    client_.Close();
    return;
  }
  if (client_.negotiated_version() < 3) {
    health_ = Status::FailedPrecondition(
        "shard daemon negotiated a protocol older than v3 "
        "(LogGather/ApplyLeases unavailable)");
    client_.Close();
    return;
  }
  if (options_.expected_fingerprint != 0 &&
      resp.schema_fingerprint != options_.expected_fingerprint) {
    health_ = Status::FailedPrecondition(
        "shard daemon serves a different sub-table (fingerprint mismatch)");
    client_.Close();
    return;
  }
  // The probe session is not a worker; close it.
  net::ByeRequest bye;
  bye.session = resp.session;
  net::ByeResponse bye_resp;
  Track(client_.Bye(bye, &bye_resp));
}

Status RemoteShardBackend::CheckUp() const {
  if (!health_.ok()) {
    return Status::FailedPrecondition("owning shard is down");
  }
  return Status::Ok();
}

Status RemoteShardBackend::Track(Status st) {
  // The client closes its fd on any transport or framing error; a clean
  // application-level verdict leaves the connection open.
  if (health_.ok() && !client_.connected()) {
    health_ = st.ok() ? Status::IoError("shard daemon connection lost") : st;
  }
  return st;
}

ShardBackend::SessionId RemoteShardBackend::StartSession(WorkerId worker) {
  if (!CheckUp().ok()) return -1;
  net::HelloRequest req;
  req.worker = worker;
  req.min_version = net::kProtocolVersionMin;
  req.max_version = net::kProtocolVersionMax;
  net::HelloResponse resp;
  if (!Track(client_.Hello(req, &resp)).ok()) return -1;
  if (resp.status != net::WireStatus::kOk) return -1;
  return static_cast<SessionId>(resp.session);
}

std::vector<CellRef> RemoteShardBackend::RequestTasks(SessionId session,
                                                      int k) {
  if (!CheckUp().ok() || session < 0 || k <= 0) return {};
  net::LeaseRequest req;
  req.session = static_cast<uint64_t>(session);
  req.max_tasks = static_cast<uint32_t>(k);
  net::LeaseResponse resp;
  if (!Track(client_.Lease(req, &resp)).ok()) return {};
  if (resp.status != net::WireStatus::kOk) return {};
  return std::move(resp.cells);
}

std::vector<Status> RemoteShardBackend::SubmitAnswerBatch(
    SessionId session, const std::vector<std::pair<CellRef, Value>>& items) {
  Status up = CheckUp();
  if (!up.ok()) return std::vector<Status>(items.size(), up);
  net::SubmitBatchRequest req;
  req.session = static_cast<uint64_t>(session);
  req.items = items;
  net::SubmitBatchResponse resp;
  // The client's retry loop absorbs RETRY_LATER shedding (the daemon books
  // nothing on a shed), so the verdict here is the first real one.
  Status st = Track(client_.SubmitBatch(req, &resp));
  if (!st.ok()) return std::vector<Status>(items.size(), st);
  if (resp.status != net::WireStatus::kOk) {
    return std::vector<Status>(items.size(),
                               StatusFromWire(resp.status, "SubmitBatch"));
  }
  std::vector<Status> statuses;
  statuses.reserve(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    statuses.push_back(
        i < resp.item_status.size()
            ? StatusFromCodeByte(resp.item_status[i])
            : Status::Internal("shard daemon sent a short item-status list"));
  }
  return statuses;
}

Status RemoteShardBackend::RetractAnswer(WorkerId worker, CellRef cell) {
  TCROWD_RETURN_IF_ERROR(CheckUp());
  net::RetractRequest req;
  req.worker = worker;
  req.cell = cell;
  net::RetractResponse resp;
  TCROWD_RETURN_IF_ERROR(Track(client_.Retract(req, &resp)));
  return StatusFromWire(resp.status, "Retract");
}

Status RemoteShardBackend::ApplyRecordedLeases(
    SessionId session, const std::vector<CellRef>& cells) {
  TCROWD_RETURN_IF_ERROR(CheckUp());
  net::ApplyLeasesRequest req;
  req.session = static_cast<uint64_t>(session);
  req.cells = cells;
  net::ApplyLeasesResponse resp;
  TCROWD_RETURN_IF_ERROR(Track(client_.ApplyLeases(req, &resp)));
  return StatusFromWire(resp.status, "ApplyLeases");
}

Status RemoteShardBackend::EndSession(SessionId session) {
  TCROWD_RETURN_IF_ERROR(CheckUp());
  net::ByeRequest req;
  req.session = static_cast<uint64_t>(session);
  net::ByeResponse resp;
  TCROWD_RETURN_IF_ERROR(Track(client_.Bye(req, &resp)));
  return StatusFromWire(resp.status, "Bye");
}

Status RemoteShardBackend::FetchStats(net::StatsResponse* resp) {
  TCROWD_RETURN_IF_ERROR(CheckUp());
  TCROWD_RETURN_IF_ERROR(Track(client_.Stats(net::StatsRequest{}, resp)));
  return StatusFromWire(resp->status, "Stats");
}

bool RemoteShardBackend::Drained() {
  net::StatsResponse resp;
  if (!FetchStats(&resp).ok()) return false;
  return resp.drained != 0;
}

ServiceStats RemoteShardBackend::Stats() {
  ServiceStats stats;
  net::StatsResponse resp;
  if (!FetchStats(&resp).ok()) return stats;
  stats.tasks_open = static_cast<int>(resp.tasks_open);
  stats.tasks_assigned = static_cast<int>(resp.tasks_assigned);
  stats.tasks_answered = static_cast<int>(resp.tasks_answered);
  stats.tasks_finalized = static_cast<int>(resp.tasks_finalized);
  stats.sessions_started = static_cast<int64_t>(resp.sessions_started);
  stats.sessions_active = static_cast<int64_t>(resp.sessions_active);
  stats.sessions_expired = static_cast<int64_t>(resp.sessions_expired);
  stats.answers_accepted = static_cast<int64_t>(resp.answers_accepted);
  stats.answers_rejected = static_cast<int64_t>(resp.answers_rejected);
  stats.answers_retracted = static_cast<int64_t>(resp.answers_retracted);
  stats.answers_restored = static_cast<int64_t>(resp.answers_restored);
  stats.assignments = static_cast<int64_t>(resp.assignments);
  stats.budget_spent = resp.budget_spent;
  stats.budget_remaining = resp.budget_remaining;
  stats.engine_refreshes = static_cast<int>(resp.engine_refreshes);
  return stats;
}

int64_t RemoteShardBackend::answers_since_refresh() {
  net::StatsResponse resp;
  if (!FetchStats(&resp).ok()) return 0;
  return static_cast<int64_t>(resp.inflight_answers);
}

uint64_t RemoteShardBackend::num_answers() {
  net::StatsResponse resp;
  if (!FetchStats(&resp).ok()) return 0;
  // The daemon's live count: accepted is net of retractions AND already
  // includes journal-restored answers (they re-spend the budget on boot).
  return resp.answers_accepted;
}

Status RemoteShardBackend::GatherLog(std::vector<Answer>* out) {
  TCROWD_RETURN_IF_ERROR(CheckUp());
  net::LogGatherResponse resp;
  TCROWD_RETURN_IF_ERROR(
      Track(client_.LogGather(net::LogGatherRequest{}, &resp)));
  TCROWD_RETURN_IF_ERROR(StatusFromWire(resp.status, "LogGather"));
  out->clear();
  TCROWD_RETURN_IF_ERROR(
      DecodeAnswerBlock(resp.block.data(), resp.block.size(), out));
  if (out->size() != resp.answer_count) {
    return Status::Internal(
        "LogGather answer count does not match its block");
  }
  return Status::Ok();
}

}  // namespace tcrowd::service
