#ifndef TCROWD_SERVICE_TASK_ROUTER_H_
#define TCROWD_SERVICE_TASK_ROUTER_H_

#include <memory>
#include <string>
#include <vector>

#include "assignment/policy.h"
#include "common/rng.h"

namespace tcrowd::service {

/// What the router does when the policy cannot (or will not) fill a
/// worker's request — e.g. every remaining candidate is leased out to other
/// in-flight sessions, or the policy's model considers nothing informative.
enum class BackfillStrategy {
  kNone,           ///< Hand back fewer tasks (possibly zero).
  kLeastAnswered,  ///< Top up with the least-answered assignable cells.
  kRandom,         ///< Top up with uniformly random assignable cells.
};

const char* BackfillStrategyName(BackfillStrategy strategy);

struct RouterOptions {
  BackfillStrategy backfill = BackfillStrategy::kLeastAnswered;
  /// The policy's internal truth model is re-fit (Policy::Refresh) after
  /// this many routed answers; between refreshes Observe keeps it warm.
  int refresh_every_answers = 32;
  /// Tie-breaking / backfill randomization seed.
  uint64_t seed = 1;
};

/// Adapts the batch-experiment AssignmentPolicy interface to per-worker
/// online requests: the service asks for up to k cells for one worker, with
/// the currently unassignable cells (leased or finalized) excluded, and the
/// router answers from the policy plus a pluggable backfill.
///
/// Ownership: the router owns the policy it adapts for its whole lifetime.
///
/// Thread-safety: not thread-safe by itself — CrowdService serializes calls
/// behind its service mutex (policies keep heavyweight incremental model
/// state).
class TaskRouter {
 public:
  /// Takes ownership of `policy` (must be non-null).
  TaskRouter(std::unique_ptr<AssignmentPolicy> policy, RouterOptions options);

  /// Picks up to `k` distinct cells for `worker`, never returning a cell in
  /// `unavailable` nor one the worker already answered. May block on an
  /// inline policy refit (a full EM for the model-based policies) when the
  /// policy has not been fitted yet.
  std::vector<CellRef> Route(const Schema& schema, const AnswerSet& answers,
                             WorkerId worker, int k,
                             const std::vector<CellRef>& unavailable);

  /// Feeds one accepted answer back into the policy (Observe), re-fitting it
  /// on the configured cadence — the refit runs inline on the caller's
  /// thread, so every refresh_every_answers-th call is expensive.
  void OnAnswer(const Schema& schema, const AnswerSet& answers,
                const Answer& answer);

  const AssignmentPolicy& policy() const { return *policy_; }
  std::string name() const { return policy_->name(); }
  int refresh_count() const { return refresh_count_; }
  int64_t backfilled() const { return backfilled_; }

 private:
  /// Backfill candidates: assignable cells the worker has not answered,
  /// ordered per the strategy.
  void Backfill(const AnswerSet& answers, WorkerId worker, int k,
                const std::vector<CellRef>& unavailable,
                std::vector<CellRef>* picked);

  std::unique_ptr<AssignmentPolicy> policy_;
  RouterOptions options_;
  Rng rng_;
  int answers_since_refresh_ = 0;
  int refresh_count_ = 0;
  int64_t backfilled_ = 0;
  bool refreshed_once_ = false;
};

}  // namespace tcrowd::service

#endif  // TCROWD_SERVICE_TASK_ROUTER_H_
