#include "service/shard_router.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "common/logging.h"
#include "inference/segment_codec.h"

namespace tcrowd::service {

namespace {

int64_t SteadyNowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Finalize-only engine configuration: same model knobs as the shards, no
/// persistence/recording, and refreshes suppressed so the only fit is the
/// exact batch fit Finalize() runs.
InferenceArgs MergeEngineArgs(InferenceArgs args) {
  args.checkpoint = CheckpointArgs{};
  args.recorder = nullptr;
  args.async_refresh = false;
  args.staleness_threshold = 1 << 30;
  return args;
}

}  // namespace

std::vector<ShardRange> PartitionRows(int num_rows, int num_shards) {
  TCROWD_CHECK(num_rows > 0);
  TCROWD_CHECK(num_shards > 0);
  std::vector<ShardRange> ranges(static_cast<size_t>(num_shards));
  int base = num_rows / num_shards;
  int extra = num_rows % num_shards;
  int row = 0;
  for (int i = 0; i < num_shards; ++i) {
    int rows = base + (i < extra ? 1 : 0);
    ranges[i] = ShardRange{row, row + rows};
    row += rows;
  }
  TCROWD_CHECK(row == num_rows);
  return ranges;
}

ShardRouter::ShardRouter(const Schema& schema, int num_rows,
                         ShardRouterConfig config)
    : schema_(schema),
      num_rows_(num_rows),
      config_(std::move(config)),
      fingerprint_(SchemaFingerprint(schema, num_rows)),
      metrics_(),
      deltas_shipped_(&metrics_.counter("router.deltas_shipped")),
      delta_answers_shipped_(&metrics_.counter("router.delta_answers")) {
  TCROWD_CHECK(config_.num_shards >= 1);
  TCROWD_CHECK(config_.num_shards <= num_rows_);
  TCROWD_CHECK(static_cast<bool>(config_.policy_factory) ||
               static_cast<bool>(config_.backend_factory));
  ranges_ = PartitionRows(num_rows_, config_.num_shards);
  ledgers_.resize(static_cast<size_t>(config_.num_shards));
  retracted_since_push_.resize(static_cast<size_t>(config_.num_shards));
  shards_.resize(static_cast<size_t>(config_.num_shards));
  for (int i = 0; i < config_.num_shards; ++i) {
    shards_[i] = MakeBackend(i);
  }
}

ShardRouter::~ShardRouter() = default;

std::unique_ptr<ShardBackend> ShardRouter::MakeBackend(int i) const {
  if (config_.backend_factory) return config_.backend_factory(i);
  return std::make_unique<LocalShardBackend>(
      schema_, ranges_[i].num_rows(), config_.policy_factory(i),
      DeriveShardServiceConfig(config_.base, schema_, num_rows_, ranges_[i],
                               config_.num_shards, i));
}

ShardBackend* ShardRouter::LiveShardLocked(int s) {
  if (UpLocked(s)) return shards_[s].get();
  if (!config_.auto_restore) return nullptr;
  // Router-daemon mode: one rebuild attempt per touch — a restarted shard
  // daemon rejoins here; a still-dead one keeps the shard failing fast.
  return RestoreShardLocked(s).ok() ? shards_[s].get() : nullptr;
}

int64_t ShardRouter::NowNanos() const {
  return config_.base.clock_nanos ? config_.base.clock_nanos()
                                  : SteadyNowNanos();
}

int ShardRouter::ShardForRow(int row) const {
  TCROWD_CHECK(row >= 0 && row < num_rows_);
  // Ranges are contiguous and sorted; binary-search the owning one.
  int lo = 0, hi = config_.num_shards - 1;
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    if (row >= ranges_[mid].row_end) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

ShardRouter::SessionId ShardRouter::StartSession(WorkerId worker) {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t now = NowNanos();
  ExpireStaleSessionsLocked(now, /*force=*/false);
  SessionId id = next_session_++;
  GlobalSession session;
  session.worker = worker;
  session.sub.assign(static_cast<size_t>(config_.num_shards), -1);
  session.last_active_nanos = now;
  for (int s = 0; s < config_.num_shards; ++s) {
    if (ShardBackend* b = LiveShardLocked(s)) {
      session.sub[s] = b->StartSession(worker);
    }
  }
  sessions_.emplace(id, std::move(session));
  ++sessions_started_total_;
  return id;
}

std::vector<CellRef> ShardRouter::RequestTasks(SessionId session, int k) {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t now = NowNanos();
  ExpireStaleSessionsLocked(now, /*force=*/false);
  auto it = sessions_.find(session);
  if (it == sessions_.end() || k <= 0) return {};
  it->second.last_active_nanos = now;
  std::vector<CellRef> leased;
  // Rotate the starting shard per call so lease pressure spreads instead of
  // always draining shard 0 first.
  size_t start = spread_cursor_++ % static_cast<size_t>(config_.num_shards);
  for (int j = 0; j < config_.num_shards; ++j) {
    int s = static_cast<int>((start + static_cast<size_t>(j)) %
                             static_cast<size_t>(config_.num_shards));
    ShardBackend* b = LiveShardLocked(s);
    if (b == nullptr || it->second.sub[s] < 0) continue;
    int need = k - static_cast<int>(leased.size());
    if (need <= 0) break;
    std::vector<CellRef> local = b->RequestTasks(it->second.sub[s], need);
    for (CellRef cell : local) {
      leased.push_back(CellRef{cell.row + ranges_[s].row_begin, cell.col});
    }
  }
  return leased;
}

Status ShardRouter::SubmitAnswer(SessionId session, CellRef cell,
                                 const Value& value) {
  std::vector<Status> statuses = SubmitAnswerBatch(session, {{cell, value}});
  return statuses.empty() ? Status::NotFound("unknown session")
                          : statuses.front();
}

std::vector<Status> ShardRouter::SubmitAnswerBatch(
    SessionId session, const std::vector<std::pair<CellRef, Value>>& items) {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t now = NowNanos();
  ExpireStaleSessionsLocked(now, /*force=*/false);
  std::vector<Status> statuses(items.size(), Status::Ok());
  auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    for (auto& st : statuses) st = Status::NotFound("unknown session");
    return statuses;
  }
  GlobalSession& gs = it->second;
  gs.last_active_nanos = now;

  // Group by owning shard, preserving each shard's relative item order (the
  // order its engine will log them in).
  std::vector<std::vector<std::pair<CellRef, Value>>> grouped(
      static_cast<size_t>(config_.num_shards));
  std::vector<std::vector<size_t>> origin(
      static_cast<size_t>(config_.num_shards));
  std::vector<int> item_shard(items.size(), -1);
  for (size_t i = 0; i < items.size(); ++i) {
    int row = items[i].first.row;
    if (row < 0 || row >= num_rows_) {
      statuses[i] = Status::OutOfRange("row outside the table");
      continue;
    }
    int s = ShardForRow(row);
    if (LiveShardLocked(s) == nullptr || gs.sub[s] < 0) {
      statuses[i] = Status::FailedPrecondition("owning shard is down");
      continue;
    }
    grouped[s].push_back(
        {CellRef{row - ranges_[s].row_begin, items[i].first.col},
         items[i].second});
    origin[s].push_back(i);
    item_shard[i] = s;
  }
  for (int s = 0; s < config_.num_shards; ++s) {
    if (grouped[s].empty()) continue;
    std::vector<Status> sub =
        shards_[s]->SubmitAnswerBatch(gs.sub[s], grouped[s]);
    for (size_t j = 0; j < sub.size(); ++j) {
      statuses[origin[s][j]] = std::move(sub[j]);
    }
  }
  // Stamp global arrival seqs over the accepted items in ORIGINAL item
  // order — this ledger order is what merged Finalize sorts by, so the
  // merged log replays the exact submission history.
  for (size_t i = 0; i < items.size(); ++i) {
    if (!statuses[i].ok()) continue;
    int s = item_shard[i];
    SeqEntry entry;
    entry.seq = next_seq_++;
    entry.answer = Answer{gs.worker, items[i].first, items[i].second};
    ledgers_[s].push_back(std::move(entry));
  }
  return statuses;
}

Status ShardRouter::RetractAnswer(WorkerId worker, CellRef cell) {
  std::lock_guard<std::mutex> lock(mu_);
  if (cell.row < 0 || cell.row >= num_rows_) {
    return Status::OutOfRange("row outside the table");
  }
  int s = ShardForRow(cell.row);
  if (LiveShardLocked(s) == nullptr) {
    return Status::FailedPrecondition("owning shard is down");
  }
  Status st = shards_[s]->RetractAnswer(
      worker, CellRef{cell.row - ranges_[s].row_begin, cell.col});
  if (!st.ok()) return st;
  // Mirror the engine's semantics in the ledger: the NEWEST live matching
  // entry is the one the shard tombstoned.
  auto& ledger = ledgers_[s];
  for (auto rit = ledger.rbegin(); rit != ledger.rend(); ++rit) {
    if (rit->live && rit->answer.worker == worker &&
        rit->answer.cell == cell) {
      rit->live = false;
      if (rit->shipped) retracted_since_push_[s].push_back(rit->seq);
      return st;
    }
  }
  // The shard accepted the retraction, so the ledger must have held the
  // answer — reaching here means the two diverged.
  return Status::Internal("retraction accepted by shard but not in ledger");
}

Status ShardRouter::ApplyRecordedLeases(SessionId session,
                                        const std::vector<CellRef>& cells) {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t now = NowNanos();
  auto it = sessions_.find(session);
  if (it == sessions_.end()) return Status::NotFound("unknown session");
  GlobalSession& gs = it->second;
  gs.last_active_nanos = now;
  std::vector<std::vector<CellRef>> grouped(
      static_cast<size_t>(config_.num_shards));
  for (CellRef cell : cells) {
    if (cell.row < 0 || cell.row >= num_rows_) {
      return Status::OutOfRange("row outside the table");
    }
    int s = ShardForRow(cell.row);
    if (LiveShardLocked(s) == nullptr || gs.sub[s] < 0) {
      return Status::FailedPrecondition("owning shard is down");
    }
    grouped[s].push_back(CellRef{cell.row - ranges_[s].row_begin, cell.col});
  }
  Status first = Status::Ok();
  for (int s = 0; s < config_.num_shards; ++s) {
    if (grouped[s].empty()) continue;
    Status st = shards_[s]->ApplyRecordedLeases(gs.sub[s], grouped[s]);
    if (!st.ok() && first.ok()) first = st;
  }
  return first;
}

Status ShardRouter::EndSession(SessionId session) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session);
  if (it == sessions_.end()) return Status::NotFound("unknown session");
  EndSubSessionsLocked(&it->second);
  sessions_.erase(it);
  return Status::Ok();
}

void ShardRouter::EndSubSessionsLocked(GlobalSession* session) {
  for (int s = 0; s < config_.num_shards; ++s) {
    if (UpLocked(s) && session->sub[s] >= 0) {
      shards_[s]->EndSession(session->sub[s]);
    }
  }
}

int ShardRouter::ExpireStaleSessions() {
  std::lock_guard<std::mutex> lock(mu_);
  return ExpireStaleSessionsLocked(NowNanos(), /*force=*/true);
}

int ShardRouter::ExpireStaleSessionsLocked(int64_t now, bool force) {
  double timeout = config_.base.session_lease_timeout_seconds;
  if (timeout <= 0.0) return 0;
  int64_t deadline = static_cast<int64_t>(timeout * 1e9);
  if (!force && now - last_sweep_nanos_ < deadline) return 0;
  last_sweep_nanos_ = now;
  int expired = 0;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (now - it->second.last_active_nanos > deadline) {
      EndSubSessionsLocked(&it->second);
      it = sessions_.erase(it);
      ++expired;
    } else {
      ++it;
    }
  }
  sessions_expired_total_ += expired;
  return expired;
}

bool ShardRouter::Drained() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& shard : shards_) {
    if (!shard || !shard->Drained()) return false;
  }
  return true;
}

ServiceStats ShardRouter::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServiceStats total;
  for (const auto& shard : shards_) {
    if (!shard || shard->down()) continue;
    ServiceStats s = shard->Stats();
    total.tasks_open += s.tasks_open;
    total.tasks_assigned += s.tasks_assigned;
    total.tasks_answered += s.tasks_answered;
    total.tasks_finalized += s.tasks_finalized;
    total.answers_accepted += s.answers_accepted;
    total.answers_rejected += s.answers_rejected;
    total.answers_retracted += s.answers_retracted;
    total.answers_restored += s.answers_restored;
    total.assignments += s.assignments;
    total.backfilled += s.backfilled;
    total.budget_spent += s.budget_spent;
    total.budget_remaining += s.budget_remaining;
    total.engine_refreshes += s.engine_refreshes;
  }
  // Session accounting is router-global (the sub-sessions a shard counts
  // are an implementation detail, N per worker arrival).
  total.sessions_started = sessions_started_total_;
  total.sessions_active = static_cast<int64_t>(sessions_.size());
  total.sessions_expired = sessions_expired_total_;
  return total;
}

Status ShardRouter::checkpoint_status() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& shard : shards_) {
    if (!shard) continue;
    Status st = shard->checkpoint_status();
    if (!st.ok()) return st;
  }
  return Status::Ok();
}

int64_t ShardRouter::answers_since_refresh() {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t laggiest = 0;
  for (const auto& shard : shards_) {
    if (!shard || shard->down()) continue;
    laggiest = std::max(
        laggiest, static_cast<int64_t>(shard->answers_since_refresh()));
  }
  return laggiest;
}

void ShardRouter::RequestRefresh() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& shard : shards_) {
    if (shard && !shard->down()) shard->RequestRefresh();
  }
}

uint64_t ShardRouter::num_answers() {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    if (shard && !shard->down()) total += shard->num_answers();
  }
  return total;
}

Status ShardRouter::PushDeltas() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!config_.delta_sink) return Status::Ok();
  for (int s = 0; s < config_.num_shards; ++s) {
    std::vector<SeqEntry*> fresh;
    for (auto& entry : ledgers_[s]) {
      if (!entry.shipped && entry.live) fresh.push_back(&entry);
    }
    if (fresh.empty() && retracted_since_push_[s].empty()) continue;
    net::ShardDeltaRequest req;
    req.shard = static_cast<uint32_t>(s);
    req.schema_fingerprint = fingerprint_;
    std::vector<Answer> answers;
    answers.reserve(fresh.size());
    for (SeqEntry* entry : fresh) {
      req.seqs.push_back(entry->seq);
      answers.push_back(entry->answer);  // global rows on the wire
    }
    req.retracted_seqs = retracted_since_push_[s];
    EncodeAnswerBlock(answers.data(), answers.size(), &req.block);
    Status st = config_.delta_sink(req);
    if (!st.ok()) return st;  // everything stays pending for the next push
    for (SeqEntry* entry : fresh) entry->shipped = true;
    // Entries retracted before ever shipping need no tombstone on the wire;
    // mark them shipped so they stop being rescanned.
    for (auto& entry : ledgers_[s]) {
      if (!entry.live) entry.shipped = true;
    }
    retracted_since_push_[s].clear();
    deltas_shipped_->Increment();
    delta_answers_shipped_->Increment(static_cast<int64_t>(answers.size()));
  }
  return Status::Ok();
}

std::vector<Answer> ShardRouter::GatherMergedLogLocked() {
  // Gather each SHARD's live answer log (not the router's copy) so a
  // restored shard proves its disk state — via GatherLog, which is a
  // kLogGather round-trip for a remote shard — and pair it positionally
  // with the ledger's live seqs: both are in log order, so the pairing is
  // 1:1.
  std::vector<std::pair<uint64_t, Answer>> merged;
  for (int s = 0; s < config_.num_shards; ++s) {
    std::vector<const SeqEntry*> live;
    for (const auto& entry : ledgers_[s]) {
      if (entry.live) live.push_back(&entry);
    }
    bool from_shard = false;
    if (UpLocked(s)) {
      std::vector<Answer> log;
      if (shards_[s]->GatherLog(&log).ok() && log.size() == live.size()) {
        for (size_t i = 0; i < live.size(); ++i) {
          Answer answer = log[i];
          answer.cell.row += ranges_[s].row_begin;
          merged.push_back({live[i]->seq, answer});
        }
        from_shard = true;
      }
    }
    if (!from_shard) {
      // Shard down (or ledger/shard divergence): the ledger's own copies
      // keep the merged history complete.
      for (const SeqEntry* entry : live) {
        merged.push_back({entry->seq, entry->answer});
      }
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<Answer> ordered;
  ordered.reserve(merged.size());
  for (auto& [seq, answer] : merged) ordered.push_back(std::move(answer));
  return ordered;
}

std::vector<Answer> ShardRouter::GatherAnswerLog() {
  std::lock_guard<std::mutex> lock(mu_);
  return GatherMergedLogLocked();
}

InferenceResult ShardRouter::Finalize() {
  // Bring a standby current before computing the digest it must match. A
  // sink failure leaves deltas pending but never blocks finalization.
  PushDeltas();

  std::lock_guard<std::mutex> lock(mu_);
  // One fresh engine over the seq-ordered merged log: the engine Finalize
  // contract (bit-identical to a batch fit over the same log) is what makes
  // this equal to the single-shard run's digest.
  std::vector<Answer> ordered = GatherMergedLogLocked();
  IncrementalInferenceEngine engine(
      schema_, num_rows_, MergeEngineArgs(config_.base.inference), nullptr);
  engine.SubmitAnswerBatch(ordered.data(), ordered.size());
  return engine.Finalize();
}

void ShardRouter::CrashShard(int i) {
  std::lock_guard<std::mutex> lock(mu_);
  TCROWD_CHECK(i >= 0 && i < config_.num_shards);
  shards_[i].reset();
  for (auto& [id, session] : sessions_) session.sub[i] = -1;
}

Status ShardRouter::RestoreShard(int i) {
  std::lock_guard<std::mutex> lock(mu_);
  TCROWD_CHECK(i >= 0 && i < config_.num_shards);
  if (UpLocked(i)) {
    return Status::FailedPrecondition("shard is up; crash it first");
  }
  return RestoreShardLocked(i);
}

Status ShardRouter::RestoreShardLocked(int i) {
  std::unique_ptr<ShardBackend> restored = MakeBackend(i);
  Status st = restored->checkpoint_status();
  if (!st.ok()) return st;
  // Agreement check: the rebuilt shard's live log must match the router's
  // ledger answer-for-answer in count. Exact for a daemon restarted from
  // its snapshot AND for a live daemon the router merely reconnected to,
  // and it catches torn remote batches (booked by the daemon, never
  // stamped by the router).
  std::vector<Answer> log;
  st = restored->GatherLog(&log);
  if (!st.ok()) return st;
  int64_t live = 0;
  for (const auto& entry : ledgers_[i]) {
    if (entry.live) ++live;
  }
  if (static_cast<int64_t>(log.size()) != live) {
    return Status::Internal(
        "restored answer log disagrees with the router ledger");
  }
  shards_[i] = std::move(restored);
  // Re-open sub-sessions for every live router session; the crashed
  // shard's leases are gone by design (sessions are not persisted), so
  // workers re-lease before answering rows it owns.
  for (auto& [id, session] : sessions_) {
    session.sub[i] = shards_[i]->StartSession(session.worker);
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// StandbyReplica.

StandbyReplica::StandbyReplica(const Schema& schema, int num_rows)
    : schema_(schema),
      num_rows_(num_rows),
      fingerprint_(SchemaFingerprint(schema, num_rows)) {}

Status StandbyReplica::Apply(const net::ShardDeltaRequest& delta) {
  if (delta.schema_fingerprint != fingerprint_) {
    return Status::FailedPrecondition(
        "delta fingerprint does not match the standby's table");
  }
  std::vector<Answer> answers;
  Status st = DecodeAnswerBlock(delta.block.data(), delta.block.size(),
                                &answers);
  if (!st.ok()) return st;
  if (answers.size() != delta.seqs.size()) {
    return Status::InvalidArgument(
        "delta seq count does not match its answer block");
  }
  for (const Answer& answer : answers) {
    if (answer.cell.row < 0 || answer.cell.row >= num_rows_ ||
        answer.cell.col < 0 || answer.cell.col >= schema_.num_columns()) {
      return Status::InvalidArgument("delta answer outside the table");
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < answers.size(); ++i) {
    uint64_t seq = delta.seqs[i];
    if (early_tombstones_.count(seq)) continue;  // retraction already won
    answers_[seq] = answers[i];
  }
  for (uint64_t seq : delta.retracted_seqs) {
    if (answers_.erase(seq) == 0) early_tombstones_[seq] = true;
  }
  ++deltas_applied_;
  return Status::Ok();
}

Status StandbyReplica::ApplyFrame(const void* data, size_t size) {
  net::FrameDecoder decoder;
  decoder.Feed(data, size);
  net::Frame frame;
  std::string error;
  if (decoder.Next(&frame, &error) != net::FrameDecoder::Result::kFrame) {
    return Status::InvalidArgument("not a whole TCNP frame: " + error);
  }
  if (frame.type != net::MsgType::kShardDelta) {
    return Status::InvalidArgument("frame is not a shard delta");
  }
  net::ShardDeltaRequest delta;
  Status st = net::DecodeShardDeltaRequest(frame.payload.data(),
                                           frame.payload.size(), &delta);
  if (!st.ok()) return st;
  return Apply(delta);
}

size_t StandbyReplica::live_answers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return answers_.size();
}

uint64_t StandbyReplica::deltas_applied() const {
  std::lock_guard<std::mutex> lock(mu_);
  return deltas_applied_;
}

InferenceResult StandbyReplica::Finalize(const InferenceArgs& args) {
  std::vector<Answer> ordered;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ordered.reserve(answers_.size());
    for (const auto& [seq, answer] : answers_) ordered.push_back(answer);
  }
  IncrementalInferenceEngine engine(schema_, num_rows_, MergeEngineArgs(args),
                                    nullptr);
  engine.SubmitAnswerBatch(ordered.data(), ordered.size());
  return engine.Finalize();
}

}  // namespace tcrowd::service
