#ifndef TCROWD_SERVICE_SHARD_BACKEND_H_
#define TCROWD_SERVICE_SHARD_BACKEND_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "data/answer.h"
#include "net/client.h"
#include "service/crowd_service.h"

namespace tcrowd::service {

struct ShardRange;

/// One shard of the partitioned serving tier, as the ShardRouter sees it —
/// the seam that lets a shard live in-process (LocalShardBackend) or in its
/// own `tcrowd_serverd` daemon on the far end of a TCNP connection
/// (RemoteShardBackend) without the router caring which.
///
/// Do not conflate this with ServingBackend (crowd_service.h): that is the
/// NORTH-facing façade drivers talk down into a whole serving topology;
/// ShardBackend is the SOUTH-facing per-shard seam the router talks down
/// into ONE shard. Consequences of the split:
///
///  - Coordinates: every CellRef here is in the shard's LOCAL row space
///    [0, range.num_rows()); the router owns the global<->local remap.
///  - Thread-safety: a ShardBackend is NOT thread-safe — the router
///    serializes all calls under its own mutex. (A LocalShardBackend's
///    CrowdService happens to lock internally; a RemoteShardBackend's
///    net::Client allows one in-flight request and must never be shared.)
///  - Blocking: calls may block on real I/O (a remote shard's round-trip,
///    including the client's RETRY_LATER backoff loop), so the router's
///    mutex hold times are bounded by the backend's timeouts, not by
///    in-process work.
///  - Failure: a backend that loses its shard (process crash, dead
///    connection) turns down() on and fast-fails every subsequent call
///    with FailedPrecondition, matching the in-process CrashShard
///    semantics; the router decides whether to rebuild it (RestoreShard /
///    auto_restore).
class ShardBackend {
 public:
  using SessionId = ServingBackend::SessionId;

  virtual ~ShardBackend() = default;

  /// Opens a sub-session for `worker` on the shard; -1 when the shard is
  /// unreachable (the router leaves the slot closed and retries via
  /// restore).
  virtual SessionId StartSession(WorkerId worker) = 0;
  /// Leases up to `k` tasks (LOCAL rows); empty on failure.
  virtual std::vector<CellRef> RequestTasks(SessionId session, int k) = 0;
  virtual std::vector<Status> SubmitAnswerBatch(
      SessionId session,
      const std::vector<std::pair<CellRef, Value>>& items) = 0;
  virtual Status RetractAnswer(WorkerId worker, CellRef cell) = 0;
  virtual Status ApplyRecordedLeases(SessionId session,
                                     const std::vector<CellRef>& cells) = 0;
  virtual Status EndSession(SessionId session) = 0;
  virtual bool Drained() = 0;
  virtual ServiceStats Stats() = 0;
  /// Persistence health — for a remote shard this is the backend's own
  /// connection health (the daemon refuses to start on a bad checkpoint).
  virtual Status checkpoint_status() = 0;
  virtual int64_t answers_since_refresh() = 0;
  virtual void RequestRefresh() = 0;
  virtual uint64_t num_answers() = 0;
  /// The shard's ordered live answer log (LOCAL rows, arrival order) — the
  /// merged-Finalize gather seam and the restore-agreement check.
  virtual Status GatherLog(std::vector<Answer>* out) = 0;
  /// True once the shard is unreachable; every call fast-fails until the
  /// router rebuilds the backend.
  virtual bool down() const = 0;
  /// The in-process service when there is one (LocalShardBackend); null
  /// for a remote shard. Test/introspection seam only.
  virtual CrowdService* local_service() { return nullptr; }
};

/// Derives shard `shard`'s ServiceConfig from the router-level template:
/// lease expiry moves to the router (sub-timeout 0), recorders stay
/// router-level (null), router seeds de-correlate per shard, checkpoint
/// directories get the "/shard-NNN" suffix plus the partition-layout
/// namespace tag, and an explicit answer budget splits proportionally to
/// cells owned. Shared by ShardRouter's in-process construction and
/// `tcrowd_serverd --shard-index` so a shard daemon derives the
/// bit-identical config the router would have built in-process.
ServiceConfig DeriveShardServiceConfig(const ServiceConfig& base,
                                       const Schema& schema, int num_rows,
                                       const ShardRange& range,
                                       int num_shards, int shard);

/// Maps a wire verdict back onto the service Status vocabulary (the
/// reverse of WireStatusFromCode; kRetryLater/kShuttingDown — verdicts with
/// no StatusCode equivalent — surface as FailedPrecondition).
Status StatusFromWire(net::WireStatus status, const char* what);

/// Today's zero-copy topology: the shard is a CrowdService owned by this
/// backend in the router's process.
class LocalShardBackend : public ShardBackend {
 public:
  LocalShardBackend(const Schema& schema, int num_rows,
                    std::unique_ptr<AssignmentPolicy> policy,
                    ServiceConfig config)
      : service_(schema, num_rows, std::move(policy), std::move(config)) {}

  SessionId StartSession(WorkerId worker) override {
    return service_.StartSession(worker);
  }
  std::vector<CellRef> RequestTasks(SessionId session, int k) override {
    return service_.RequestTasks(session, k);
  }
  std::vector<Status> SubmitAnswerBatch(
      SessionId session,
      const std::vector<std::pair<CellRef, Value>>& items) override {
    return service_.SubmitAnswerBatch(session, items);
  }
  Status RetractAnswer(WorkerId worker, CellRef cell) override {
    return service_.RetractAnswer(worker, cell);
  }
  Status ApplyRecordedLeases(SessionId session,
                             const std::vector<CellRef>& cells) override {
    return service_.ApplyRecordedLeases(session, cells);
  }
  Status EndSession(SessionId session) override {
    return service_.EndSession(session);
  }
  bool Drained() override { return service_.Drained(); }
  ServiceStats Stats() override { return service_.Stats(); }
  Status checkpoint_status() override { return service_.checkpoint_status(); }
  int64_t answers_since_refresh() override {
    return service_.answers_since_refresh();
  }
  void RequestRefresh() override { service_.RequestRefresh(); }
  uint64_t num_answers() override { return service_.num_answers(); }
  Status GatherLog(std::vector<Answer>* out) override {
    *out = service_.GatherAnswerLog();
    return Status::Ok();
  }
  bool down() const override { return false; }
  CrowdService* local_service() override { return &service_; }

 private:
  CrowdService service_;
};

/// A shard living in its own `tcrowd_serverd` process: every call is a
/// blocking TCNP round-trip over one net::Client connection
/// (docs/SHARDING.md, process topology). Construction connects (with
/// bounded retries, since the daemon may still be starting), negotiates
/// protocol version >= 3, and verifies the daemon serves the expected
/// sub-table; any of those failing leaves the backend down() with the
/// error in checkpoint_status().
///
/// Failure semantics: a transport error (dead connection, broken framing)
/// marks the backend down and every later call fast-fails with
/// FailedPrecondition — the remote mirror of CrashShard. One caveat the
/// router's ledger-agreement restore check guards: an answer batch whose
/// connection died between write and response may have been booked by the
/// daemon without the router stamping it; such a torn batch surfaces as a
/// restore-time "disagrees with the router ledger" error rather than a
/// silent digest divergence.
class RemoteShardBackend : public ShardBackend {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    /// SchemaFingerprint(schema, range.num_rows()) of the SUB-table the
    /// daemon must be serving; 0 skips the check.
    uint64_t expected_fingerprint = 0;
    /// Connect retry budget: the daemon may still be binding its listener.
    int connect_attempts = 20;
    int connect_retry_millis = 100;
    net::Client::Options client;
  };

  explicit RemoteShardBackend(Options options);

  SessionId StartSession(WorkerId worker) override;
  std::vector<CellRef> RequestTasks(SessionId session, int k) override;
  std::vector<Status> SubmitAnswerBatch(
      SessionId session,
      const std::vector<std::pair<CellRef, Value>>& items) override;
  Status RetractAnswer(WorkerId worker, CellRef cell) override;
  Status ApplyRecordedLeases(SessionId session,
                             const std::vector<CellRef>& cells) override;
  Status EndSession(SessionId session) override;
  bool Drained() override;
  ServiceStats Stats() override;
  Status checkpoint_status() override { return health_; }
  int64_t answers_since_refresh() override;
  void RequestRefresh() override {}  // the daemon meters its own admission
  uint64_t num_answers() override;
  Status GatherLog(std::vector<Answer>* out) override;
  bool down() const override { return !health_.ok(); }

 private:
  /// Gate shared by every call: FailedPrecondition once down.
  Status CheckUp() const;
  /// Folds a call verdict into the health state: a dead connection (the
  /// client closes its fd on any transport/framing error) marks the
  /// backend down; clean application-level errors do not.
  Status Track(Status st);
  Status FetchStats(net::StatsResponse* resp);

  Options options_;
  net::Client client_;
  Status health_;
};

}  // namespace tcrowd::service

#endif  // TCROWD_SERVICE_SHARD_BACKEND_H_
