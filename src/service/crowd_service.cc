#include "service/crowd_service.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "inference/segment_codec.h"
#include "platform/event_log.h"
#include "platform/trace.h"

namespace tcrowd::service {

namespace {

// The engine gets the service's recorder through its own args (the engine
// records seal events from refresh threads).
InferenceArgs WithRecorder(InferenceArgs args, EventRecorder* recorder) {
  args.recorder = recorder;
  return args;
}

}  // namespace

const char* TaskStateName(TaskState state) {
  switch (state) {
    case TaskState::kOpen:
      return "open";
    case TaskState::kAssigned:
      return "assigned";
    case TaskState::kAnswered:
      return "answered";
    case TaskState::kFinalized:
      return "finalized";
  }
  return "?";
}

CrowdService::CrowdService(const Schema& schema, int num_rows,
                           std::unique_ptr<AssignmentPolicy> policy,
                           ServiceConfig config)
    : schema_(schema),
      num_rows_(num_rows),
      config_(std::move(config)),
      sessions_started_(&metrics_.counter("service.sessions_started")),
      sessions_ended_(&metrics_.counter("service.sessions_ended")),
      sessions_expired_(&metrics_.counter("service.sessions_expired")),
      tasks_assigned_(&metrics_.counter("service.tasks_assigned")),
      answers_accepted_(&metrics_.counter("service.answers_accepted")),
      answers_rejected_(&metrics_.counter("service.answers_rejected")),
      answers_retracted_(&metrics_.counter("service.answers_retracted")),
      answer_batches_(&metrics_.counter("service.answer_batches")),
      answers_restored_(&metrics_.counter("service.answers_restored")),
      tasks_finalized_(&metrics_.counter("service.tasks_finalized")),
      request_latency_(&metrics_.latency("service.request_tasks")),
      submit_latency_(&metrics_.latency("service.submit_answer")),
      pool_(static_cast<size_t>(std::max(1, config_.num_threads))),
      engine_(std::make_unique<IncrementalInferenceEngine>(
          schema, num_rows,
          WithRecorder(config_.inference, config_.recorder), &pool_)),
      router_(std::move(policy), config_.router),
      answers_(num_rows, schema.num_columns()),
      tasks_(static_cast<size_t>(num_rows) * schema.num_columns()) {
  TCROWD_CHECK(num_rows_ > 0);
  TCROWD_CHECK(schema_.num_columns() > 0);
  config_.target_answers_per_task =
      std::max(1, config_.target_answers_per_task);
  if (config_.max_total_answers < 0) {
    config_.max_total_answers =
        static_cast<int64_t>(config_.target_answers_per_task) * tasks_.size();
  }

  // Crash-restart recovery: replay the engine's restored answer log into
  // the service ledger, exactly as if each answer had been accepted live —
  // per-cell counts, budget spend/commit, and task finalization all line
  // up with the durable history. The router is NOT warmed per answer; its
  // first Route() refits over the full recovered AnswerSet anyway.
  std::vector<Answer> restored_log;
  if (engine_->restored_answers() > 0) {
    AnswerSet recovered = engine_->SnapshotAnswers();
    restored_log = recovered.answers();
    for (const Answer& answer : recovered.answers()) {
      answers_.Add(answer);
      TaskEntry& task = TaskAt(answer.cell);
      ++task.answers;
      ++budget_spent_;
      ++budget_committed_;
      if (task.answers >= config_.target_answers_per_task &&
          !task.finalized) {
        task.finalized = true;
        ++finalized_count_;
        tasks_finalized_->Increment();
      }
    }
    answers_restored_->Increment(static_cast<int64_t>(recovered.size()));
    answers_accepted_->Increment(static_cast<int64_t>(recovered.size()));
    // Bring estimates back online without blocking startup (async mode
    // runs the fit on the service pool).
    engine_->RequestRefresh();
  }
  TCROWD_TRACE(kService, kInfo, "service up", tasks_.size(),
               restored_log.size());
  // kRunStart carries the restored bootstrap so a replay without the
  // checkpoint directory can re-inject the durable history first.
  if (config_.recorder != nullptr) {
    config_.recorder->RecordRunStart(SchemaFingerprint(schema_, num_rows_),
                                     static_cast<uint32_t>(num_rows_),
                                     restored_log);
  }
}

CrowdService::~CrowdService() = default;

TaskState CrowdService::StateOf(const TaskEntry& task) const {
  if (task.finalized) return TaskState::kFinalized;
  if (task.leases > 0) return TaskState::kAssigned;
  if (task.answers > 0) return TaskState::kAnswered;
  return TaskState::kOpen;
}

bool CrowdService::Assignable(const TaskEntry& task) const {
  return !task.finalized &&
         task.answers + task.leases < config_.target_answers_per_task;
}

CrowdService::TaskEntry& CrowdService::TaskAt(CellRef cell) {
  return tasks_[static_cast<size_t>(cell.row) * schema_.num_columns() +
                cell.col];
}

const CrowdService::TaskEntry& CrowdService::TaskAt(CellRef cell) const {
  return tasks_[static_cast<size_t>(cell.row) * schema_.num_columns() +
                cell.col];
}

bool CrowdService::DrainedLocked() const {
  return budget_committed_ >= config_.max_total_answers ||
         finalized_count_ == static_cast<int>(tasks_.size());
}

int64_t CrowdService::NowNanos() const {
  if (config_.clock_nanos) return config_.clock_nanos();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void CrowdService::ReleaseLeasesLocked(Session* session) {
  for (const CellRef& cell : session->leases) {
    --TaskAt(cell).leases;
    --budget_committed_;  // refund the unanswered commitment
  }
  session->leases.clear();
}

int CrowdService::ExpireStaleSessionsLocked(int64_t now, bool force) {
  if (config_.session_lease_timeout_seconds <= 0.0) return 0;
  const int64_t deadline_nanos =
      static_cast<int64_t>(config_.session_lease_timeout_seconds * 1e9);
  // Sweep watermark: after a sweep at time T no surviving session can be
  // overdue before T + deadline, so the request paths skip the
  // O(active sessions) scan until then (expiry may lag by at most one
  // deadline period there; the explicit ExpireStaleSessions() is exact).
  if (!force && now - last_sweep_nanos_ < deadline_nanos) return 0;
  last_sweep_nanos_ = now;
  std::vector<uint64_t> expired_ids;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (now - it->second.last_active_nanos > deadline_nanos) {
      ReleaseLeasesLocked(&it->second);
      expired_ids.push_back(static_cast<uint64_t>(it->first));
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
  const int expired = static_cast<int>(expired_ids.size());
  if (expired > 0) {
    sessions_expired_total_ += expired;
    sessions_expired_->Increment(expired);
    TCROWD_TRACE(kService, kInfo, "sessions expired",
                 static_cast<uint64_t>(expired), sessions_.size());
    // Wall-clock expiry is nondeterministic; the log pins which sessions
    // died so replay applies the identical sweep.
    if (config_.recorder != nullptr) {
      config_.recorder->RecordSessionsExpired(expired_ids);
    }
  }
  return expired;
}

int CrowdService::ExpireStaleSessions() {
  std::lock_guard<std::mutex> lock(mu_);
  return ExpireStaleSessionsLocked(NowNanos(), /*force=*/true);
}

CrowdService::SessionId CrowdService::StartSession(WorkerId worker) {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t now = NowNanos();
  ExpireStaleSessionsLocked(now);
  SessionId id = next_session_++;
  Session& sess = sessions_[id];
  sess.worker = worker;
  sess.last_active_nanos = now;
  ++sessions_started_total_;
  sessions_started_->Increment();
  TCROWD_TRACE(kService, kDebug, "session start", static_cast<uint64_t>(id),
               static_cast<uint64_t>(static_cast<uint32_t>(worker)));
  if (config_.recorder != nullptr) {
    config_.recorder->RecordSessionStart(static_cast<uint64_t>(id), worker);
  }
  return id;
}

std::vector<CellRef> CrowdService::RequestTasks(SessionId session, int k) {
  ScopedLatencyTimer timer(request_latency_);
  std::lock_guard<std::mutex> lock(mu_);
  int64_t now = NowNanos();
  ExpireStaleSessionsLocked(now);
  auto it = sessions_.find(session);
  if (it == sessions_.end() || k <= 0 || DrainedLocked()) return {};
  Session& sess = it->second;
  sess.last_active_nanos = now;

  // Remaining global budget caps the lease batch.
  int64_t headroom = config_.max_total_answers - budget_committed_;
  k = static_cast<int>(std::min<int64_t>(k, headroom));
  if (k <= 0) return {};

  // Cells the router must not hand out: finalized or fully committed tasks,
  // plus everything ANY session of this worker already holds — the policies
  // only know which cells the worker has *answered*, so in-flight leases of
  // a worker running concurrent sessions must be excluded here or the same
  // worker could answer one cell twice.
  std::vector<CellRef> unavailable;
  for (int i = 0; i < num_rows_; ++i) {
    for (int j = 0; j < schema_.num_columns(); ++j) {
      CellRef cell{i, j};
      if (!Assignable(TaskAt(cell))) unavailable.push_back(cell);
    }
  }
  for (const auto& entry : sessions_) {
    const Session& other = entry.second;
    if (other.worker == sess.worker) {
      unavailable.insert(unavailable.end(), other.leases.begin(),
                         other.leases.end());
    }
  }

  std::vector<CellRef> picked =
      router_.Route(schema_, answers_, sess.worker, k, unavailable);
  for (const CellRef& cell : picked) {
    ++TaskAt(cell).leases;
    sess.leases.push_back(cell);
    ++budget_committed_;
    tasks_assigned_->Increment();
  }
  TCROWD_TRACE(kRouter, kDebug, "leases granted",
               static_cast<uint64_t>(session), picked.size());
  // Routing depends on the policy's current fit — async refresh timing —
  // so the grant itself is the recorded decision, not the request.
  if (config_.recorder != nullptr) {
    config_.recorder->RecordLeases(static_cast<uint64_t>(session), picked);
  }
  return picked;
}

Status CrowdService::ApplyRecordedLeases(SessionId session,
                                         const std::vector<CellRef>& cells) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    return Status::NotFound(
        StrFormat("unknown session %lld", static_cast<long long>(session)));
  }
  for (const CellRef& cell : cells) {
    if (cell.row < 0 || cell.row >= num_rows_ || cell.col < 0 ||
        cell.col >= schema_.num_columns()) {
      return Status::InvalidArgument(
          StrFormat("cell (%d,%d) out of range", cell.row, cell.col));
    }
  }
  Session& sess = it->second;
  sess.last_active_nanos = NowNanos();
  for (const CellRef& cell : cells) {
    ++TaskAt(cell).leases;
    sess.leases.push_back(cell);
    ++budget_committed_;
    tasks_assigned_->Increment();
  }
  TCROWD_TRACE(kReplay, kDebug, "replayed leases",
               static_cast<uint64_t>(session), cells.size());
  return Status::Ok();
}

Status CrowdService::AcceptAnswerLocked(Session* session, CellRef cell,
                                        const Value& value, Answer* out) {
  auto lease =
      std::find(session->leases.begin(), session->leases.end(), cell);
  if (lease == session->leases.end()) {
    ++rejected_;
    answers_rejected_->Increment();
    return Status::FailedPrecondition(
        StrFormat("session holds no lease on cell (%d,%d)", cell.row,
                  cell.col));
  }
  const ColumnSpec& col = schema_.column(cell.col);
  bool type_ok =
      value.valid() && ((col.type == ColumnType::kCategorical &&
                         value.is_categorical() && value.label() >= 0 &&
                         value.label() < static_cast<int>(col.labels.size())) ||
                        (col.type == ColumnType::kContinuous &&
                         value.is_continuous()));
  if (!type_ok) {
    ++rejected_;
    answers_rejected_->Increment();
    return Status::InvalidArgument(
        StrFormat("value %s does not fit column '%s'",
                  value.ToString().c_str(), col.name.c_str()));
  }

  session->leases.erase(lease);
  *out = Answer{session->worker, cell, value};
  answers_.Add(*out);
  TaskEntry& task = TaskAt(cell);
  --task.leases;
  ++task.answers;
  ++budget_spent_;
  answers_accepted_->Increment();
  TCROWD_TRACE(kService, kDebug, "answer accepted",
               static_cast<uint64_t>(static_cast<uint32_t>(session->worker)),
               static_cast<uint64_t>(budget_spent_));
  if (task.answers >= config_.target_answers_per_task && !task.finalized) {
    task.finalized = true;
    ++finalized_count_;
    tasks_finalized_->Increment();
  }
  // Keep the policy's model warm; the router refits on its own cadence.
  router_.OnAnswer(schema_, answers_, *out);
  return Status::Ok();
}

Status CrowdService::SubmitAnswer(SessionId session, CellRef cell,
                                  const Value& value) {
  ScopedLatencyTimer timer(submit_latency_);
  Answer answer;
  {
    std::lock_guard<std::mutex> lock(mu_);
    int64_t now = NowNanos();
    ExpireStaleSessionsLocked(now);
    // Single-item submits record the same kAnswerBatch frame as the batch
    // path; the log captures the acceptance status either way, so replay
    // can assert the replayed service reached the same verdict.
    auto record = [&](const Status& st) {
      if (config_.recorder == nullptr) return;
      config_.recorder->RecordAnswerBatch(
          static_cast<uint64_t>(session),
          {{cell, value, static_cast<uint8_t>(st.code())}});
    };
    auto it = sessions_.find(session);
    if (it == sessions_.end()) {
      ++rejected_;
      answers_rejected_->Increment();
      Status st = Status::NotFound(
          StrFormat("unknown session %lld", static_cast<long long>(session)));
      record(st);
      return st;
    }
    Session& sess = it->second;
    sess.last_active_nanos = now;
    Status st = AcceptAnswerLocked(&sess, cell, value, &answer);
    record(st);
    if (!st.ok()) return st;
  }
  // The engine queues the answer under its own ingest lock and may kick off
  // an async EM refresh; no service state is touched past this point.
  engine_->SubmitAnswer(answer);
  return Status::Ok();
}

std::vector<Status> CrowdService::SubmitAnswerBatch(
    SessionId session, const std::vector<std::pair<CellRef, Value>>& items) {
  ScopedLatencyTimer timer(submit_latency_);
  answer_batches_->Increment();
  std::vector<Status> statuses;
  statuses.reserve(items.size());
  std::vector<Answer> accepted;
  accepted.reserve(items.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    int64_t now = NowNanos();
    ExpireStaleSessionsLocked(now);
    auto record = [&]() {
      if (config_.recorder == nullptr) return;
      std::vector<AnswerEventItem> recorded;
      recorded.reserve(items.size());
      for (size_t k = 0; k < items.size(); ++k) {
        recorded.push_back({items[k].first, items[k].second,
                            static_cast<uint8_t>(statuses[k].code())});
      }
      config_.recorder->RecordAnswerBatch(static_cast<uint64_t>(session),
                                          recorded);
    };
    auto it = sessions_.find(session);
    if (it == sessions_.end()) {
      rejected_ += static_cast<int64_t>(items.size());
      answers_rejected_->Increment(static_cast<int64_t>(items.size()));
      Status not_found = Status::NotFound(
          StrFormat("unknown session %lld", static_cast<long long>(session)));
      statuses.assign(items.size(), not_found);
      record();
      return statuses;
    }
    Session& sess = it->second;
    sess.last_active_nanos = now;
    for (const auto& [cell, value] : items) {
      Answer answer;
      Status st = AcceptAnswerLocked(&sess, cell, value, &answer);
      if (st.ok()) accepted.push_back(answer);
      statuses.push_back(std::move(st));
    }
    record();
  }
  // One engine hand-off for the whole page: the accepted answers enter the
  // ingest queue in batch order and drain into the tail segment together.
  if (!accepted.empty()) {
    engine_->SubmitAnswerBatch(accepted.data(), accepted.size());
  }
  return statuses;
}

Status CrowdService::RetractAnswer(WorkerId worker, CellRef cell) {
  std::lock_guard<std::mutex> lock(mu_);
  auto record = [&](const Status& st) {
    if (config_.recorder == nullptr) return;
    config_.recorder->RecordRetract(worker, cell,
                                    static_cast<uint8_t>(st.code()));
  };
  if (cell.row < 0 || cell.row >= num_rows_ || cell.col < 0 ||
      cell.col >= schema_.num_columns()) {
    Status st = Status::InvalidArgument(
        StrFormat("cell (%d,%d) out of range", cell.row, cell.col));
    record(st);
    return st;
  }
  // Engine first: it owns the durable log, and a submit whose engine
  // hand-off is still in flight on another thread surfaces there as
  // NotFound — in that case the ledger must stay untouched too.
  Status st = engine_->RetractAnswer(worker, cell);
  record(st);
  TCROWD_TRACE(kService, kInfo, "retraction",
               static_cast<uint64_t>(static_cast<uint32_t>(worker)),
               static_cast<uint64_t>(st.ok() ? 1 : 0));
  if (!st.ok()) return st;

  bool removed = answers_.RemoveLast(worker, cell);
  TCROWD_CHECK(removed) << "ledger/engine retraction mismatch";
  TaskEntry& task = TaskAt(cell);
  --task.answers;
  --budget_spent_;
  --budget_committed_;
  if (task.finalized && task.answers < config_.target_answers_per_task) {
    // The task only reached its target thanks to the retracted answer;
    // reopen it so the router can backfill the hole.
    task.finalized = false;
    --finalized_count_;
  }
  ++retractions_total_;
  answers_retracted_->Increment();
  return Status::Ok();
}

Status CrowdService::EndSession(SessionId session) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    return Status::NotFound(
        StrFormat("unknown session %lld", static_cast<long long>(session)));
  }
  ReleaseLeasesLocked(&it->second);
  sessions_.erase(it);
  sessions_ended_->Increment();
  TCROWD_TRACE(kService, kDebug, "session end", static_cast<uint64_t>(session),
               sessions_.size());
  if (config_.recorder != nullptr) {
    config_.recorder->RecordSessionEnd(static_cast<uint64_t>(session));
  }
  return Status::Ok();
}

TaskState CrowdService::task_state(CellRef cell) const {
  std::lock_guard<std::mutex> lock(mu_);
  return StateOf(TaskAt(cell));
}

int CrowdService::AnswerCount(CellRef cell) const {
  std::lock_guard<std::mutex> lock(mu_);
  return TaskAt(cell).answers;
}

bool CrowdService::Drained() const {
  std::lock_guard<std::mutex> lock(mu_);
  return DrainedLocked();
}

ServiceStats CrowdService::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServiceStats stats;
  for (const TaskEntry& task : tasks_) {
    switch (StateOf(task)) {
      case TaskState::kOpen:
        ++stats.tasks_open;
        break;
      case TaskState::kAssigned:
        ++stats.tasks_assigned;
        break;
      case TaskState::kAnswered:
        ++stats.tasks_answered;
        break;
      case TaskState::kFinalized:
        ++stats.tasks_finalized;
        break;
    }
  }
  stats.sessions_started = sessions_started_total_;
  stats.sessions_active = static_cast<int64_t>(sessions_.size());
  stats.sessions_expired = sessions_expired_total_;
  stats.answers_accepted = budget_spent_;
  stats.answers_rejected = rejected_;
  stats.answers_retracted = retractions_total_;
  stats.answers_restored = answers_restored_->value();
  stats.assignments = tasks_assigned_->value();
  stats.backfilled = router_.backfilled();
  stats.budget_spent = budget_spent_;
  stats.budget_remaining = config_.max_total_answers - budget_committed_;
  stats.engine_refreshes = engine_->refresh_count();
  return stats;
}

InferenceResult CrowdService::Finalize() {
  InferenceResult result = engine_->Finalize();
  const uint64_t digest = TruthDigest(result.estimated_truth);
  TCROWD_TRACE(kService, kInfo, "finalize", digest,
               static_cast<uint64_t>(engine_->num_answers()));
  // The digest is the replay contract: a re-driven run must Finalize() to a
  // truth table with this exact bit pattern.
  if (config_.recorder != nullptr) {
    config_.recorder->RecordFinalize(
        digest, static_cast<uint64_t>(engine_->num_answers()));
  }
  return result;
}

}  // namespace tcrowd::service
