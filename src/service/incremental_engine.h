#ifndef TCROWD_SERVICE_INCREMENTAL_ENGINE_H_
#define TCROWD_SERVICE_INCREMENTAL_ENGINE_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "data/answer.h"
#include "inference/em_executor.h"
#include "inference/inference_result.h"
#include "inference/tcrowd_model.h"

namespace tcrowd::service {

/// MAGPIE-style argument block configuring the online inference engine: one
/// plain struct carries the method choice, the model knobs, and the thread
/// control in a single hand-off.
struct InferenceArgs {
  /// Truth-inference method serving the estimates. "tcrowd" (default) and
  /// its restricted variants "tc-onlycate"/"tc-onlycont" get the full
  /// incremental path; "mv", "median", "crh", "catd", "ds", "zencrowd",
  /// "glad", "gtm" fall back to periodic batch refits.
  std::string method = "tcrowd";

  /// Model knobs for the T-Crowd EM (ignored by baseline methods).
  TCrowdOptions tcrowd_options = TCrowdOptions::Fast();

  /// A full EM refresh is scheduled once this many answers have been
  /// absorbed since the last (started) refresh.
  int staleness_threshold = 64;

  /// Shards of the engine's persistent EmExecutor, across which every
  /// refresh fans its E/M steps. The executor (and its thread pool) lives
  /// as long as the engine — refreshes never spawn threads.
  int num_shards = 1;

  /// When set, refreshes run as background jobs on the caller-supplied
  /// common::ThreadPool and SubmitAnswer never blocks on a refit; when
  /// clear (or no pool is given), refreshes run inline.
  bool async_refresh = true;

  /// Answers required before the first fit is attempted (EM on a nearly
  /// empty matrix is noise).
  int min_answers_for_fit = 8;
};

/// Online truth inference around the batch models: owns the growing answer
/// matrix (the service's single cached copy — every consumer reads it from
/// here instead of re-indexing answer logs), absorbs each answer with a
/// cheap per-cell Bayes step, and re-converges with a sharded EM refresh
/// whenever the incremental state has gone stale.
///
/// Refreshes run the exact same hot loop as the batch TCrowdModel (both fit
/// through AnswerMatrixLayout + EmExecutor), on a persistent executor owned
/// by this engine, so no refresh ever pays thread start-up. Refresh
/// requests arriving while a refresh is running coalesce into exactly one
/// follow-up refresh.
///
/// Thread-safety: every public method may be called concurrently; internal
/// state is guarded by one mutex, and refresh fits run on a snapshot so the
/// submit path never waits on EM.
class IncrementalInferenceEngine {
 public:
  /// `pool` (optional, unowned) runs async refreshes; it must outlive the
  /// engine. Pass nullptr to force inline refreshes. The constructor also
  /// builds the engine's own persistent EmExecutor (spawning its worker
  /// threads once) sized to the normalized
  /// max(tcrowd_options.num_threads, num_shards).
  IncrementalInferenceEngine(const Schema& schema, int num_rows,
                             InferenceArgs args, ThreadPool* pool);
  /// Blocks until any in-flight or coalesced-pending refresh has drained,
  /// then joins the executor's pool.
  ~IncrementalInferenceEngine();

  IncrementalInferenceEngine(const IncrementalInferenceEngine&) = delete;
  IncrementalInferenceEngine& operator=(const IncrementalInferenceEngine&) =
      delete;

  /// Appends the answer to the cached matrix, applies the incremental
  /// posterior update, and schedules a refresh when staleness crosses the
  /// threshold. Never blocks on EM in async mode; in inline mode (no pool
  /// or async_refresh=false) the triggering call runs the refresh itself.
  void SubmitAnswer(const Answer& answer);

  /// Explicitly schedules a full refresh (subject to min_answers_for_fit).
  /// If one is already running, the request coalesces: exactly one
  /// follow-up refresh runs after the current one installs, no matter how
  /// many requests arrived meanwhile. Non-blocking in async mode; runs the
  /// refresh inline otherwise.
  void RequestRefresh();

  /// Copy of the current answer matrix (safe against concurrent submits).
  AnswerSet SnapshotAnswers() const;
  /// Number of answers absorbed so far.
  size_t num_answers() const;

  /// Current point estimate for one cell (incrementally updated between
  /// refreshes). Missing value before the first fit / without answers.
  Value Estimate(CellRef cell) const;
  /// Current posterior entropy of one cell; 0 before the first fit.
  double CellEntropy(CellRef cell) const;
  /// Current full estimated table (missing cells where nothing is known).
  Table EstimatedTruth() const;

  /// Blocks until no refresh is running, queued behind a submit, or
  /// pending through coalescing.
  void WaitForRefresh();

  /// Drains pending refreshes, then runs one final full batch fit over the
  /// complete answer matrix (on the persistent executor for the T-Crowd
  /// methods) and returns it. The finalized truths therefore match the
  /// batch model run on the same answer set exactly. Blocks.
  InferenceResult Finalize();

  /// Diagnostics. Each takes the engine mutex briefly; never blocks on EM.
  int refresh_count() const;
  int answers_since_refresh() const;
  bool fitted() const;
  const InferenceArgs& args() const { return args_; }

  /// True for "tcrowd" and its restricted tc-onlycate/tc-onlycont variants,
  /// which all run the incremental path.
  static bool IsTCrowdMethod(const std::string& method);

 private:
  /// The T-Crowd model (full or restricted variant) for `args_.method`.
  TCrowdModel MakeTCrowdModel() const;
  /// Builds the batch model for `args_.method` (never null; unknown names
  /// fall back to T-Crowd).
  std::unique_ptr<TruthInference> MakeBatchMethod() const;

  /// Schedules (or runs inline) a refresh; `mu_` must be held. Sets the
  /// coalescing flag instead when a refresh is already in flight.
  void ScheduleRefreshLocked(bool* run_inline);
  /// The refresh body: snapshot, fit, install, replay the tail; loops while
  /// coalesced requests are pending.
  void RunRefresh();

  const Schema schema_;
  const int num_rows_;
  const InferenceArgs args_;
  ThreadPool* const pool_;  // unowned; nullptr = inline refresh

  /// Persistent sharded EM substrate: one pool + scratch for the engine's
  /// lifetime, reused by every refresh and by Finalize.
  std::unique_ptr<EmExecutor> executor_;

  mutable std::mutex mu_;
  std::condition_variable refresh_done_;
  AnswerSet answers_;
  /// Incremental T-Crowd state (valid when fitted_ && tcrowd_path_).
  TCrowdState state_;
  /// Batch estimates for the baseline path (valid when fitted_ &&
  /// !tcrowd_path_).
  InferenceResult baseline_result_;
  bool tcrowd_path_ = true;
  bool fitted_ = false;
  bool refresh_in_flight_ = false;
  /// A refresh was requested while one was running; the in-flight refresh
  /// runs exactly one more pass before clearing refresh_in_flight_.
  bool refresh_pending_ = false;
  bool shutdown_ = false;
  int answers_since_refresh_ = 0;
  int refresh_count_ = 0;
  /// Index into answers_ of the first answer the running refresh did NOT
  /// snapshot; on install the tail [snapshot_size_, size) is replayed.
  size_t snapshot_size_ = 0;
};

}  // namespace tcrowd::service

#endif  // TCROWD_SERVICE_INCREMENTAL_ENGINE_H_
