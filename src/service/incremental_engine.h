#ifndef TCROWD_SERVICE_INCREMENTAL_ENGINE_H_
#define TCROWD_SERVICE_INCREMENTAL_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "data/answer.h"
#include "inference/em_executor.h"
#include "inference/inference_result.h"
#include "inference/segment_store.h"
#include "inference/tcrowd_model.h"
#include "service/snapshot_store.h"

namespace tcrowd {
class EventRecorder;
}  // namespace tcrowd

namespace tcrowd::service {

/// MAGPIE-style argument block configuring the online inference engine: one
/// plain struct carries the method choice, the model knobs, and the thread
/// control in a single hand-off.
struct InferenceArgs {
  /// Truth-inference method serving the estimates. "tcrowd" (default) and
  /// its restricted variants "tc-onlycate"/"tc-onlycont" get the full
  /// incremental path; "mv", "median", "crh", "catd", "ds", "zencrowd",
  /// "glad", "gtm" fall back to periodic batch refits.
  std::string method = "tcrowd";

  /// Model knobs for the T-Crowd EM (ignored by baseline methods).
  TCrowdOptions tcrowd_options = TCrowdOptions::Fast();

  /// A full EM refresh is scheduled once this many answers have been
  /// absorbed since the last (started) refresh.
  int staleness_threshold = 64;

  /// Shards of the engine's persistent EmExecutor, across which every
  /// refresh fans its E/M steps. The executor (and its thread pool) lives
  /// as long as the engine — refreshes never spawn threads.
  int num_shards = 1;

  /// When set, refreshes run as background jobs on the caller-supplied
  /// common::ThreadPool and SubmitAnswer never blocks on a refit; when
  /// clear (or no pool is given), refreshes run inline.
  bool async_refresh = true;

  /// Answers required before the first fit is attempted (EM on a nearly
  /// empty matrix is noise).
  int min_answers_for_fit = 8;

  /// Submitted answers buffer in the engine's ingest queue and are drained
  /// into the answer store's tail segment in one pass once this many are
  /// queued (or earlier, when a staleness crossing / read needs them) —
  /// amortizing the engine lock and the incremental posterior updates over
  /// the batch instead of locking per answer. 1 restores per-answer
  /// absorption.
  int ingest_batch_size = 32;

  /// Segment substrate tuning: compaction thresholds of the engine-owned
  /// SegmentedAnswerStore (fragmentation, epoch growth, tombstones).
  SegmentedAnswerStore::Options store;

  /// Durable segment persistence (docs/PERSISTENCE.md). When a directory is
  /// set, the engine restores the answer log from it at construction,
  /// journals every ingest-drained batch, and persists each newly sealed
  /// slice of the log piggybacked on the refresh seal — keeping the hot
  /// path O(new answers). Empty (default) disables persistence entirely.
  CheckpointArgs checkpoint;

  /// Event recorder (unowned, nullable): the engine records a kSeal event
  /// after each tail seal. CrowdService plumbs its configured recorder in
  /// here; seals are informational for replay (which force-compacts at
  /// Finalize anyway) but load-bearing for incident forensics.
  EventRecorder* recorder = nullptr;
};

/// Online truth inference around the batch models: owns the growing
/// segmented answer store (the service's single indexed copy — every
/// consumer reads it from here instead of re-indexing answer logs), absorbs
/// answers batch-wise with cheap per-cell Bayes steps, and re-converges
/// with a sharded EM refresh whenever the incremental state has gone stale.
///
/// The answer path (see docs/DATA_LIFECYCLE.md):
///
///   SubmitAnswer/SubmitAnswerBatch -> ingest queue -> (drain) tail segment
///   -> SealAndSnapshot() seals the tail -> EM streams the sealed segments
///
/// A refresh seals ONLY the new tail (O(new answers)) and snapshots a
/// vector of segment pointers — it never copies the answer matrix and never
/// rebuilds the layout of previously sealed answers, so refresh cost scales
/// with what arrived since the last refresh, not with total history.
///
/// Refreshes run the exact same hot loop as the batch TCrowdModel (both fit
/// through the segmented snapshot + EmExecutor), on a persistent executor
/// owned by this engine, so no refresh ever pays thread start-up. Refresh
/// requests arriving while a refresh is running coalesce into exactly one
/// follow-up refresh.
///
/// Thread-safety: every public method may be called concurrently. Internal
/// state is guarded by one engine mutex; the ingest queue has its own
/// cheaper mutex so submits don't contend with reads or refresh installs;
/// fits stream immutable segment snapshots so the submit path never waits
/// on EM. Read APIs drain the ingest queue first (read-your-writes).
class IncrementalInferenceEngine {
 public:
  /// `pool` (optional, unowned) runs async refreshes; it must outlive the
  /// engine. Pass nullptr to force inline refreshes. The constructor also
  /// builds the engine's own persistent EmExecutor (spawning its worker
  /// threads once) sized to the normalized
  /// max(tcrowd_options.num_threads, num_shards).
  IncrementalInferenceEngine(const Schema& schema, int num_rows,
                             InferenceArgs args, ThreadPool* pool);
  /// Blocks until any in-flight or coalesced-pending refresh has drained,
  /// then joins the executor's pool.
  ~IncrementalInferenceEngine();

  IncrementalInferenceEngine(const IncrementalInferenceEngine&) = delete;
  IncrementalInferenceEngine& operator=(const IncrementalInferenceEngine&) =
      delete;

  /// Queues the answer for ingestion. The queue is drained into the store's
  /// tail segment — applying the incremental posterior updates in one
  /// locked pass — when ingest_batch_size answers have gathered, when
  /// staleness crosses the refresh threshold, or when a read needs the
  /// answers. Never blocks on EM in async mode; in inline mode the
  /// staleness-crossing call runs the refresh itself.
  void SubmitAnswer(const Answer& answer);

  /// Queues a whole batch under one ingest lock; the batched ingestion
  /// entry point behind CrowdService::SubmitAnswerBatch. Answers keep their
  /// in-batch order in the global log. Same drain/refresh semantics as
  /// SubmitAnswer.
  void SubmitAnswerBatch(const Answer* answers, size_t n);

  /// Explicitly schedules a full refresh (subject to min_answers_for_fit).
  /// If one is already running, the request coalesces: exactly one
  /// follow-up refresh runs after the current one installs, no matter how
  /// many requests arrived meanwhile. Non-blocking in async mode; runs the
  /// refresh inline otherwise.
  void RequestRefresh();

  /// Retracts the newest live answer `worker` gave on `cell`: tombstones it
  /// in the store (per-cell counts drop immediately; the physical removal
  /// happens at the next seal), journals a durable retraction record when
  /// checkpointing is on, and counts toward staleness so a refresh
  /// re-converges without the answer. The incremental posterior keeps the
  /// retracted evidence until that refresh; Finalize() is always exact
  /// (it force-compacts to the live answers first). NotFound when the
  /// worker has no live answer on the cell.
  Status RetractAnswer(WorkerId worker, CellRef cell);

  /// Full export of the current answer log as a plain AnswerSet. O(total
  /// answers) by design — this is the test/baseline path, NOT the refresh
  /// path (refreshes snapshot segment pointers instead). Drains the ingest
  /// queue first.
  AnswerSet SnapshotAnswers();
  /// Number of answers absorbed so far (drains the ingest queue).
  size_t num_answers();

  /// Current point estimate for one cell (incrementally updated between
  /// refreshes). Missing value before the first fit / without answers.
  /// Drains the ingest queue so a submitted answer is always visible.
  Value Estimate(CellRef cell);
  /// Current posterior entropy of one cell; 0 before the first fit.
  double CellEntropy(CellRef cell);
  /// Current full estimated table (missing cells where nothing is known).
  Table EstimatedTruth();

  /// Blocks until no refresh is running, queued behind a submit, or
  /// pending through coalescing.
  void WaitForRefresh();

  /// Drains pending ingests and refreshes, compacts the store (fresh
  /// standardization epoch and worker registry over everything collected —
  /// exactly what the batch model computes), then runs one final full
  /// batch-converged fit on the persistent executor and returns it. The
  /// finalized truths therefore match the batch model run on the same
  /// answer set bit for bit. Blocks.
  InferenceResult Finalize();

  /// Diagnostics. Each takes the engine mutex briefly; never blocks on EM.
  int refresh_count() const;
  /// Answers absorbed into the store since the last scheduled refresh
  /// (excludes answers still buffered in the ingest queue).
  int answers_since_refresh() const;
  bool fitted() const;
  const InferenceArgs& args() const { return args_; }
  /// Substrate counters of the engine-owned store (seals, compactions,
  /// re-indexed entries) — what the no-O(total)-rebuild regression test and
  /// bench_ingest read. Drains the ingest queue.
  SegmentedAnswerStore::Stats store_stats();

  /// Health of the persistence subsystem. OK while checkpointing is
  /// disabled or working; once an open/restore or write fails the engine
  /// stops persisting (it keeps serving from memory — durability degrades,
  /// inference does not) and this returns the first error.
  Status checkpoint_status() const;
  /// Live answers recovered from the checkpoint directory at construction
  /// (durable log minus durable retractions). Constant after the
  /// constructor returns.
  size_t restored_answers() const { return restored_; }
  /// Durable retractions replayed at construction. Constant after the
  /// constructor returns.
  size_t restored_retractions() const { return restored_retractions_; }
  /// Retractions accepted by this engine instance (restored ones excluded).
  size_t num_retractions() const;

  /// True for "tcrowd" and its restricted tc-onlycate/tc-onlycont variants,
  /// which all run the incremental path.
  static bool IsTCrowdMethod(const std::string& method);

 private:
  /// The T-Crowd model (full or restricted variant) for `args_.method`.
  TCrowdModel MakeTCrowdModel() const;
  /// Builds the batch model for `args_.method` (never null; unknown names
  /// fall back to T-Crowd).
  std::unique_ptr<TruthInference> MakeBatchMethod() const;

  /// Moves every queued answer into the store's tail and (unless
  /// `apply_updates` is false because the caller is about to install a
  /// fresh state and replay the tail) applies the incremental posterior
  /// updates; `mu_` must be held (takes `ingest_mu_` briefly inside —
  /// always in that order).
  void DrainIngestLocked(bool apply_updates = true);
  /// Drains, then schedules a refresh if the absorbed state is stale.
  void DrainAndMaybeRefresh();
  /// Schedules (or runs inline) a refresh; `mu_` must be held. Sets the
  /// coalescing flag instead when a refresh is already in flight.
  void ScheduleRefreshLocked(bool* run_inline);
  /// The refresh body: seal + segment-pointer snapshot, fit, install,
  /// replay the tail; loops while coalesced requests are pending.
  void RunRefresh();
  /// Staleness predicate; `mu_` must be held.
  bool StaleLocked() const;
  /// Restores the answer log from the snapshot directory (constructor
  /// only, before any concurrency; re-seals at the durable segment
  /// boundaries). Disables persistence on failure.
  void RestoreFromCheckpoint();
  /// Persists the not-yet-durable slice of the append-only log
  /// (`unsealed_log_`) after a SealAndSnapshot() and resets the journal;
  /// `mu_` must be held (the tail is empty at that point, so everything in
  /// the slice is sealed). O(new answers). Disables persistence on failure.
  void PersistSealedLocked();
  /// Moves `pending_dead_` into the sorted `applied_dead_` set; must be
  /// called under `mu_` right after every SealAndSnapshot(), which is the
  /// moment the store physically removes pending tombstones and renumbers.
  void AbsorbAppliedTombstonesLocked();
  /// Store id currently holding log id `log_id` (= log id minus the
  /// applied retractions before it); `mu_` must be held and the id live.
  size_t StoreIdForLocked(uint64_t log_id) const;
  /// Records a persistence failure and stops persisting; `mu_` must be
  /// held (or the constructor running single-threaded).
  void DisableCheckpointing(const Status& error, const char* during);

  const Schema schema_;
  const int num_rows_;
  const InferenceArgs args_;
  ThreadPool* const pool_;  // unowned; nullptr = inline refresh

  /// Persistent sharded EM substrate: one pool + scratch for the engine's
  /// lifetime, reused by every refresh and by Finalize.
  std::unique_ptr<EmExecutor> executor_;

  /// Ingest queue: submits append here under `ingest_mu_` only, so the
  /// submit hot path never contends with reads, installs, or the Bayes
  /// updates. Lock order: mu_ before ingest_mu_ (never the reverse).
  std::mutex ingest_mu_;
  std::vector<Answer> ingest_;
  /// Answers ever queued (ingest + absorbed); lock-free staleness hints.
  std::atomic<size_t> total_queued_{0};
  std::atomic<int> absorbed_since_refresh_{0};
  std::atomic<bool> fitted_flag_{false};

  mutable std::mutex mu_;
  std::condition_variable refresh_done_;
  /// The segmented answer log (tail + sealed immutable segments).
  SegmentedAnswerStore store_;
  /// Durable side of the log (null when checkpointing is disabled or has
  /// failed). All access under `mu_` (constructor excepted).
  std::unique_ptr<SnapshotStore> snapshot_;
  Status checkpoint_status_;
  size_t restored_ = 0;
  size_t restored_retractions_ = 0;

  // ---- Retraction bookkeeping (all under `mu_`). The durable log is
  // append-only in LOG-ID space: every accepted answer gets the next log id
  // forever, retractions are separate records, and the in-memory store's
  // global ids are the log ids minus the retractions already applied by a
  // seal. ----
  /// Answers ever accepted (monotonic; store ids are log-space minus
  /// applied retractions).
  uint64_t log_size_ = 0;
  /// Unfiltered log slice accepted since the last durable persist; what
  /// PersistSealedLocked writes as the next segment file. Maintained only
  /// while checkpointing is live.
  std::vector<Answer> unsealed_log_;
  /// Retracted log ids already physically removed by a seal (sorted).
  std::vector<uint64_t> applied_dead_;
  /// Retracted log ids tombstoned but still occupying store numbering
  /// (applied at the next seal).
  std::vector<uint64_t> pending_dead_;
  /// Per-cell live answers (log id + worker), newest last; how a
  /// (worker, cell) retraction resolves to a log id.
  struct CellLogEntry {
    uint64_t log_id;
    WorkerId worker;
  };
  std::vector<std::vector<CellLogEntry>> cell_live_;
  uint64_t retractions_total_ = 0;
  /// Incremental T-Crowd state (valid when fitted_ && tcrowd_path_).
  TCrowdState state_;
  /// Batch estimates for the baseline path (valid when fitted_ &&
  /// !tcrowd_path_).
  InferenceResult baseline_result_;
  bool tcrowd_path_ = true;
  bool fitted_ = false;
  bool refresh_in_flight_ = false;
  /// A refresh was requested while one was running; the in-flight refresh
  /// runs exactly one more pass before clearing refresh_in_flight_.
  bool refresh_pending_ = false;
  bool shutdown_ = false;
  int answers_since_refresh_ = 0;
  int refresh_count_ = 0;
  /// Store size the running refresh snapshotted; on install the tail
  /// [snapshot_size_, size) is replayed incrementally.
  size_t snapshot_size_ = 0;
};

}  // namespace tcrowd::service

#endif  // TCROWD_SERVICE_INCREMENTAL_ENGINE_H_
