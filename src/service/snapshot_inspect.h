#ifndef TCROWD_SERVICE_SNAPSHOT_INSPECT_H_
#define TCROWD_SERVICE_SNAPSHOT_INSPECT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace tcrowd::service {

/// Read-only structural report over a snapshot directory (MANIFEST +
/// seg-NNNNNN.bin + journal.bin), for the `tcrowd inspect` subcommand and
/// for tests. Unlike SnapshotStore::Open — which refuses a damaged
/// directory outright — inspection is diagnostic: it decodes as much as it
/// can and FLAGS problems per file instead of stopping at the first one,
/// so an operator can see what a refused snapshot actually contains.
struct SegmentInspection {
  std::string file;           ///< name relative to the snapshot directory
  uint64_t manifest_count = 0;  ///< answers the manifest promises
  uint64_t decoded_count = 0;   ///< answers the file actually decodes to
  uint64_t bytes = 0;           ///< on-disk size
  bool crc_ok = false;        ///< file CRC matches the manifest entry
  bool decodes = false;       ///< answer block decodes cleanly
  std::string problem;        ///< empty when healthy
};

struct SnapshotInspection {
  std::string directory;

  // MANIFEST
  bool manifest_ok = false;
  std::string manifest_problem;  ///< decode refusal, when !manifest_ok
  uint32_t codec_version = 0;    ///< kSegmentCodecVersion the tools build at
  uint64_t schema_fingerprint = 0;
  uint64_t sealed_answers = 0;

  std::vector<SegmentInspection> segments;

  // journal.bin tail
  bool journal_present = false;
  uint64_t journal_bytes = 0;
  uint64_t journal_records = 0;   ///< whole batch records replayed
  uint64_t journal_answers = 0;   ///< answers across those records
  bool journal_truncated = false;  ///< torn/corrupt tail was dropped

  /// Durable retraction table: manifest-folded ids plus journal records.
  std::vector<uint64_t> manifest_retractions;
  std::vector<uint64_t> journal_retractions;

  /// True when every present piece is internally consistent (manifest
  /// decodes, every segment verifies, journal tail clean).
  bool healthy() const;
};

/// Inspects `directory`. Returns non-OK only when the directory does not
/// look like a snapshot at all (no MANIFEST file); any damage beyond that
/// is reported inside the inspection, not as a Status.
Status InspectSnapshot(const std::string& directory, SnapshotInspection* out);

/// Renders an inspection as the human-readable `tcrowd inspect` listing.
std::string FormatInspection(const SnapshotInspection& inspection);

}  // namespace tcrowd::service

#endif  // TCROWD_SERVICE_SNAPSHOT_INSPECT_H_
