#ifndef TCROWD_SERVICE_SHARD_ROUTER_H_
#define TCROWD_SERVICE_SHARD_ROUTER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "assignment/policy.h"
#include "net/protocol.h"
#include "service/crowd_service.h"
#include "service/shard_backend.h"

namespace tcrowd::service {

/// Contiguous tuple range a shard owns: global rows [row_begin, row_end).
struct ShardRange {
  int row_begin = 0;
  int row_end = 0;

  int num_rows() const { return row_end - row_begin; }
};

/// Even partition of `num_rows` into `num_shards` contiguous ranges; the
/// first (num_rows % num_shards) shards get one extra row.
std::vector<ShardRange> PartitionRows(int num_rows, int num_shards);

struct ShardRouterConfig {
  /// Engine shards the table is partitioned across (>= 1).
  int num_shards = 2;
  /// Per-shard service template. The router derives each shard's actual
  /// config from it: lease expiry moves to the router (sub-timeouts 0),
  /// the recorder stays router-level (sub-recorders null), checkpoint
  /// directories get a per-shard "/shard-NNN" suffix plus a namespace tag
  /// (docs/SHARDING.md), router seeds de-correlate per shard, and an
  /// explicit answer budget splits proportionally to each shard's cells.
  ServiceConfig base;
  /// Builds shard `i`'s assignment policy over its OWN sub-table shape.
  /// Required unless backend_factory is set (every in-process shard routes
  /// leases independently).
  std::function<std::unique_ptr<AssignmentPolicy>(int shard)> policy_factory;
  /// Builds shard `i`'s backend. Unset → LocalShardBackend over the derived
  /// per-shard config + policy_factory (today's in-process topology); set →
  /// any ShardBackend, e.g. a RemoteShardBackend per `tcrowd_serverd` shard
  /// daemon (the `--router` process topology, docs/SHARDING.md). Also
  /// re-invoked by RestoreShard to rebuild a crashed shard.
  std::function<std::unique_ptr<ShardBackend>(int shard)> backend_factory;
  /// Router-daemon resilience: a request routed to a down shard first
  /// re-runs the backend factory (reconnect, checkpoint/ledger agreement
  /// checks, sub-session re-open) before failing fast — so a shard daemon
  /// restarted from its snapshot dir rejoins on the next touch without
  /// restarting the router (whose in-memory arrival ledger must survive).
  bool auto_restore = false;
  /// Optional sealed-delta sink: PushDeltas() hands every newly shipped
  /// per-shard delta (global-row answer block + seqs, wire layout of
  /// net::ShardDeltaRequest) to this callback — an in-process
  /// StandbyReplica, or a net::Client::ShardDelta call to a standby
  /// server. A non-OK return leaves the delta unshipped for the next push.
  std::function<Status(const net::ShardDeltaRequest&)> delta_sink;
};

/// Multi-shard serving tier: partitions the table across N shards — each a
/// ShardBackend, in-process (LocalShardBackend owning a CrowdService:
/// engine + snapshot dir + router policy) or a remote `tcrowd_serverd`
/// daemon (RemoteShardBackend) — and presents them as ONE ServingBackend.
/// Sessions span all shards; leases, submits, and retractions route to the
/// shard owning the cell's row; and Finalize() merges the per-shard truth
/// states into one global answer set whose digest is bit-identical to a
/// single-shard run over the same accepted history
/// (tests/test_shard_router.cc, tests/test_remote_shard.cc).
///
/// The identity hinges on the global arrival ledger: worker quality couples
/// across tuples in the EM, so per-shard fits cannot simply concatenate.
/// Every accepted answer is stamped with a router-global sequence number in
/// submission order; Finalize() gathers each shard's live answer log
/// through ShardBackend::GatherLog — the shard ENGINE's log, in-process or
/// over the wire (kLogGather), so the crash drill genuinely exercises disk
/// restore — remaps local rows to global, merge-sorts by seq, and
/// batch-fits a fresh engine over the merged log, which the engine
/// Finalize contract makes bit-identical to the single-engine run that saw
/// the same history. See docs/SHARDING.md.
///
/// Thread-safety: same contract as CrowdService — all public methods may be
/// called from concurrent driver threads; router state AND every
/// ShardBackend call are serialized on the router mutex (backends are not
/// thread-safe, see shard_backend.h), so remote round-trips bound the
/// router's mutex hold times.
class ShardRouter : public ServingBackend {
 public:
  ShardRouter(const Schema& schema, int num_rows, ShardRouterConfig config);
  ~ShardRouter() override;

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  // ---- ServingBackend surface (semantics documented on the interface).
  SessionId StartSession(WorkerId worker) override;
  std::vector<CellRef> RequestTasks(SessionId session, int k) override;
  Status SubmitAnswer(SessionId session, CellRef cell,
                      const Value& value) override;
  std::vector<Status> SubmitAnswerBatch(
      SessionId session,
      const std::vector<std::pair<CellRef, Value>>& items) override;
  Status RetractAnswer(WorkerId worker, CellRef cell) override;
  Status ApplyRecordedLeases(SessionId session,
                             const std::vector<CellRef>& cells) override;
  Status EndSession(SessionId session) override;
  int ExpireStaleSessions() override;
  bool Drained() const override;
  ServiceStats Stats() const override;
  Status checkpoint_status() const override;
  InferenceResult Finalize() override;
  MetricsRegistry& metrics() override { return metrics_; }
  const Schema& schema() const override { return schema_; }
  int num_rows() const override { return num_rows_; }
  int64_t answers_since_refresh() override;
  void RequestRefresh() override;
  uint64_t num_answers() override;
  int staleness_threshold() const override {
    return config_.base.inference.staleness_threshold;
  }
  /// The merged global live log (seq order, global rows) — what a router
  /// daemon serves for kLogGather.
  std::vector<Answer> GatherAnswerLog() override;

  // ---- Sharding surface.
  int shards() const { return config_.num_shards; }
  const ShardRange& range(int shard) const { return ranges_[shard]; }
  int ShardForRow(int row) const;
  /// Shard `i`'s in-process sub-service; null while crashed (see
  /// CrashShard) and null for a remote backend (test/introspection seam).
  CrowdService* shard(int i) {
    return shards_[i] ? shards_[i]->local_service() : nullptr;
  }
  /// Shard `i`'s backend; null while crashed.
  ShardBackend* backend(int i) { return shards_[i].get(); }
  /// Global-table fingerprint stamped on every shipped delta.
  uint64_t global_fingerprint() const { return fingerprint_; }

  /// Ships every not-yet-shipped accepted answer (and every retraction of
  /// an already-shipped one) to the delta sink, one net::ShardDeltaRequest
  /// per shard with pending work. No-op without a sink. Returns the first
  /// sink error (those deltas stay pending). Finalize() pushes implicitly
  /// so a standby is current at the digest point.
  Status PushDeltas();

  /// Fault-injection seam: tears down shard `i`'s backend (its snapshot
  /// directory — or remote daemon — survives). Requests routed to a downed
  /// shard fail with FailedPrecondition; leases spread over the remaining
  /// shards, which keep serving undisturbed.
  void CrashShard(int i);
  /// Rebuilds shard `i` via the backend factory — from its own snapshot
  /// directory in-process, or by reconnecting to its (restarted) daemon —
  /// and re-opens sub-sessions for every live router session. Internal
  /// error when the restored answer log disagrees with the router's live
  /// ledger for the shard — merged Finalize identity could no longer be
  /// guaranteed.
  Status RestoreShard(int i);

 private:
  /// One accepted answer's ledger entry: its global arrival seq, the
  /// answer with GLOBAL row coordinates, liveness (retraction clears it),
  /// and whether a delta already shipped it.
  struct SeqEntry {
    uint64_t seq = 0;
    Answer answer;
    bool live = true;
    bool shipped = false;
  };
  struct GlobalSession {
    WorkerId worker = -1;
    /// Sub-session ids, indexed by shard; -1 while the shard is down.
    std::vector<SessionId> sub;
    int64_t last_active_nanos = 0;
  };

  int64_t NowNanos() const;
  /// Builds shard `i`'s backend: the configured factory, or a
  /// LocalShardBackend over DeriveShardServiceConfig + policy_factory.
  std::unique_ptr<ShardBackend> MakeBackend(int i) const;
  /// True while shard `s` has a reachable backend; `mu_` must be held.
  bool UpLocked(int s) const {
    return shards_[s] != nullptr && !shards_[s]->down();
  }
  /// Shard `s`'s backend if reachable — after an auto_restore rebuild
  /// attempt when it is not. Null means the shard is down; callers must
  /// re-read a session's sub id afterwards (restore re-opens them).
  /// `mu_` must be held.
  ShardBackend* LiveShardLocked(int s);
  /// Factory rebuild + agreement checks + sub-session re-open; `mu_` must
  /// be held and the shard must be down.
  Status RestoreShardLocked(int i);
  /// The merged live log in seq order (global rows); `mu_` must be held.
  std::vector<Answer> GatherMergedLogLocked();
  /// Lazy lease-deadline sweep mirroring CrowdService (watermark-capped
  /// unless `force`); `mu_` must be held. Returns sessions expired.
  int ExpireStaleSessionsLocked(int64_t now, bool force);
  /// Ends `session`'s sub-sessions on every live shard; `mu_` must be held.
  void EndSubSessionsLocked(GlobalSession* session);

  const Schema schema_;
  const int num_rows_;
  ShardRouterConfig config_;
  uint64_t fingerprint_ = 0;
  std::vector<ShardRange> ranges_;
  std::vector<std::unique_ptr<ShardBackend>> shards_;

  MetricsRegistry metrics_;
  Counter* deltas_shipped_;
  Counter* delta_answers_shipped_;

  mutable std::mutex mu_;
  std::unordered_map<SessionId, GlobalSession> sessions_;
  SessionId next_session_ = 1;
  int64_t sessions_started_total_ = 0;
  int64_t sessions_expired_total_ = 0;
  int64_t last_sweep_nanos_ = 0;
  uint64_t next_seq_ = 1;
  /// Per-shard arrival ledgers, append-ordered exactly like the shard
  /// engine's answer log (retraction clears the NEWEST live matching
  /// entry, mirroring engine semantics).
  std::vector<std::vector<SeqEntry>> ledgers_;
  /// Per shard: seqs retracted AFTER they shipped (next delta carries the
  /// tombstone). Retractions of never-shipped entries just drop them.
  std::vector<std::vector<uint64_t>> retracted_since_push_;
  /// Rotates the shard a RequestTasks fan-out starts at, spreading lease
  /// pressure across shards.
  size_t spread_cursor_ = 0;
};

/// Warm standby fed by ShardRouter deltas: accumulates the global live
/// answer set (seq-keyed, so retraction tombstones and out-of-order shard
/// pushes land correctly) and can batch-fit it into the same final truth
/// the primary's merged Finalize produces (digest-identical when it has
/// seen every delta). Apply/ApplyFrame are what a standby server's
/// ServerOptions::shard_delta_handler plugs into.
class StandbyReplica {
 public:
  StandbyReplica(const Schema& schema, int num_rows);

  /// Applies one delta: fingerprint must match the standby's table shape
  /// (FailedPrecondition), the block's answer count must equal the seq
  /// count (InvalidArgument). Idempotent per seq; retractions may precede
  /// their answer (the tombstone wins).
  Status Apply(const net::ShardDeltaRequest& delta);
  /// Decodes one whole TCNP kShardDelta frame, then Apply().
  Status ApplyFrame(const void* data, size_t size);

  size_t live_answers() const;
  uint64_t deltas_applied() const;
  /// Batch-fits the accumulated live set in seq order with a fresh engine.
  InferenceResult Finalize(const InferenceArgs& args);

 private:
  const Schema schema_;
  const int num_rows_;
  uint64_t fingerprint_ = 0;

  mutable std::mutex mu_;
  std::map<uint64_t, Answer> answers_;  ///< seq -> live answer (global rows)
  /// Seqs retracted before their answer arrived (tombstone wins on apply).
  std::map<uint64_t, bool> early_tombstones_;
  uint64_t deltas_applied_ = 0;
};

}  // namespace tcrowd::service

#endif  // TCROWD_SERVICE_SHARD_ROUTER_H_
