#include "service/replay.h"

#include <cstddef>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "inference/segment_codec.h"
#include "platform/trace.h"

namespace tcrowd::service {
namespace {

void NoteDivergence(ReplayReport* report, const char* what, CellRef cell,
                    uint8_t recorded, uint8_t replayed) {
  ++report->status_divergences;
  if (report->first_divergence.empty()) {
    report->first_divergence = StrFormat(
        "%s at (%d,%d): recorded %s, replayed %s", what, cell.row, cell.col,
        StatusCodeName(static_cast<StatusCode>(recorded)),
        StatusCodeName(static_cast<StatusCode>(replayed)));
  }
}

/// Re-injects checkpoint-recovered answers through the live submit path.
/// Valid because Finalize() force-compacts: only the chronological answer
/// order matters to the final fit, not which segment an answer landed in.
/// Consecutive same-worker runs share one bootstrap session so the ledger
/// books them the way a real worker session would have.
Status BootstrapRestored(const std::vector<Answer>& restored,
                         CrowdService* service, ReplayReport* report) {
  size_t i = 0;
  while (i < restored.size()) {
    size_t j = i;
    while (j < restored.size() &&
           restored[j].worker == restored[i].worker) {
      ++j;
    }
    CrowdService::SessionId sid = service->StartSession(restored[i].worker);
    std::vector<CellRef> cells;
    std::vector<std::pair<CellRef, Value>> items;
    cells.reserve(j - i);
    items.reserve(j - i);
    for (size_t k = i; k < j; ++k) {
      cells.push_back(restored[k].cell);
      items.emplace_back(restored[k].cell, restored[k].value);
    }
    TCROWD_RETURN_IF_ERROR(service->ApplyRecordedLeases(sid, cells));
    for (const Status& st : service->SubmitAnswerBatch(sid, items)) {
      if (!st.ok()) {
        return Status::Internal(
            StrFormat("restored answer rejected: %s", st.ToString().c_str()));
      }
      ++report->restored_bootstrapped;
    }
    service->EndSession(sid);
    i = j;
  }
  return Status::Ok();
}

}  // namespace

const RecordedEvent* FindRunStart(const EventLogReplay& log) {
  for (const RecordedEvent& e : log.events) {
    if (e.type == EventType::kRunStart) return &e;
  }
  return nullptr;
}

Status ReplayEvents(const EventLogReplay& log, CrowdService* service,
                    ReplayReport* report) {
  *report = ReplayReport{};
  report->log_truncated = log.truncated;

  // Recorded session id -> live session id. Entries are never erased: a
  // submit against an already-ended session must replay to the same
  // NotFound the original run returned.
  std::unordered_map<uint64_t, CrowdService::SessionId> session_map;

  for (const RecordedEvent& e : log.events) {
    switch (e.type) {
      case EventType::kRunStart: {
        report->seed = e.seed;
        report->policy = e.policy;
        report->world = e.world;
        const uint64_t fp =
            SchemaFingerprint(service->schema(), service->num_rows());
        if (e.schema_fingerprint != fp) {
          return Status::FailedPrecondition(StrFormat(
              "event log was recorded against a different world: schema "
              "fingerprint %llx, serving %llx",
              static_cast<unsigned long long>(e.schema_fingerprint),
              static_cast<unsigned long long>(fp)));
        }
        if (!e.restored.empty()) {
          TCROWD_RETURN_IF_ERROR(
              BootstrapRestored(e.restored, service, report));
        }
        break;
      }
      case EventType::kSessionStart: {
        session_map[e.session] = service->StartSession(e.worker);
        ++report->sessions_replayed;
        break;
      }
      case EventType::kLeases: {
        auto it = session_map.find(e.session);
        if (it == session_map.end()) {
          return Status::Internal(StrFormat(
              "lease event for session %llu with no recorded start",
              static_cast<unsigned long long>(e.session)));
        }
        TCROWD_RETURN_IF_ERROR(
            service->ApplyRecordedLeases(it->second, e.cells));
        report->leases_replayed += e.cells.size();
        break;
      }
      case EventType::kAnswerBatch: {
        // An unmapped recorded session means the original submit already
        // hit NotFound (e.g. it raced an expiry sweep). Session id 0 is
        // never granted, so it reproduces those statuses.
        auto it = session_map.find(e.session);
        const CrowdService::SessionId sid =
            it == session_map.end() ? 0 : it->second;
        std::vector<std::pair<CellRef, Value>> items;
        items.reserve(e.items.size());
        for (const AnswerEventItem& item : e.items) {
          items.emplace_back(item.cell, item.value);
        }
        std::vector<Status> statuses = service->SubmitAnswerBatch(sid, items);
        report->answers_offered += e.items.size();
        for (size_t i = 0; i < e.items.size() && i < statuses.size(); ++i) {
          const uint8_t replayed =
              static_cast<uint8_t>(statuses[i].code());
          if (statuses[i].ok()) ++report->answers_accepted;
          if (replayed != e.items[i].status_code) {
            NoteDivergence(report, "submit", e.items[i].cell,
                           e.items[i].status_code, replayed);
          }
        }
        break;
      }
      case EventType::kRetract: {
        const CellRef cell = e.cells.empty() ? CellRef{0, 0} : e.cells[0];
        const Status st = service->RetractAnswer(e.worker, cell);
        ++report->retractions_replayed;
        const uint8_t replayed = static_cast<uint8_t>(st.code());
        if (replayed != e.status_code) {
          NoteDivergence(report, "retract", cell, e.status_code, replayed);
        }
        break;
      }
      case EventType::kSessionEnd: {
        auto it = session_map.find(e.session);
        if (it != session_map.end()) service->EndSession(it->second);
        break;
      }
      case EventType::kSessionsExpired: {
        // Replay has no wall clock; the recorded victim list IS the sweep.
        // EndSession has the identical ledger effect (leases released,
        // commitments refunded, session unusable afterwards).
        for (uint64_t s : e.expired) {
          auto it = session_map.find(s);
          if (it != session_map.end()) service->EndSession(it->second);
        }
        break;
      }
      case EventType::kSeal:
        break;  // informational: seal boundaries never affect Finalize
      case EventType::kFinalize: {
        InferenceResult result = service->Finalize();
        report->reached_finalize = true;
        report->recorded_digest = e.digest;
        report->replayed_digest = TruthDigest(result.estimated_truth);
        report->recorded_answer_count = e.answer_count;
        report->replayed_answer_count = service->engine().num_answers();
        report->digest_match =
            report->recorded_digest == report->replayed_digest;
        TCROWD_TRACE(kReplay, kInfo, "finalize digests compared",
                     report->recorded_digest, report->replayed_digest);
        break;
      }
    }
    ++report->events_applied;
  }
  return Status::Ok();
}

Status ReplayEventLogFile(const std::string& path, CrowdService* service,
                          ReplayReport* report) {
  EventLogReplay log;
  TCROWD_RETURN_IF_ERROR(ReadEventLogFile(path, &log));
  return ReplayEvents(log, service, report);
}

}  // namespace tcrowd::service
