#include "service/snapshot_inspect.h"

#include <cstdio>

#include "common/string_util.h"
#include "data/answer.h"
#include "inference/segment_codec.h"

namespace tcrowd::service {
namespace {

/// Reads a whole file into `*out`. Distinct from SnapshotStore's file-local
/// reader on purpose: inspection must not depend on the store's Open
/// preconditions (it reads directories the store would refuse).
Status ReadFileBytes(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError(StrFormat("cannot open %s", path.c_str()));
  }
  out->clear();
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    out->append(buf, n);
  }
  const bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) {
    return Status::IoError(StrFormat("read error on %s", path.c_str()));
  }
  return Status::Ok();
}

void InspectSegment(const std::string& directory,
                    const ManifestSegment& entry, SegmentInspection* out) {
  out->file = entry.file;
  out->manifest_count = entry.count;
  std::string bytes;
  Status st = ReadFileBytes(directory + "/" + entry.file, &bytes);
  if (!st.ok()) {
    out->problem = st.ToString();
    return;
  }
  out->bytes = bytes.size();
  out->crc_ok = Crc32(bytes.data(), bytes.size()) == entry.crc;
  std::vector<Answer> answers;
  st = DecodeAnswerBlock(bytes.data(), bytes.size(), &answers);
  out->decodes = st.ok();
  out->decoded_count = answers.size();
  if (!out->crc_ok) {
    out->problem = "file CRC disagrees with manifest";
  } else if (!out->decodes) {
    out->problem = st.ToString();
  } else if (out->decoded_count != entry.count) {
    out->problem = StrFormat("manifest promises %llu answers, file holds %llu",
                             static_cast<unsigned long long>(entry.count),
                             static_cast<unsigned long long>(answers.size()));
  }
}

}  // namespace

bool SnapshotInspection::healthy() const {
  if (!manifest_ok) return false;
  for (const SegmentInspection& seg : segments) {
    if (!seg.problem.empty()) return false;
  }
  return !journal_truncated;
}

Status InspectSnapshot(const std::string& directory,
                       SnapshotInspection* out) {
  *out = SnapshotInspection{};
  out->directory = directory;
  out->codec_version = kSegmentCodecVersion;

  std::string bytes;
  Status st = ReadFileBytes(directory + "/MANIFEST", &bytes);
  if (!st.ok()) {
    return Status::NotFound(
        StrFormat("%s does not look like a snapshot directory: %s",
                  directory.c_str(), st.ToString().c_str()));
  }

  SnapshotManifest manifest;
  st = DecodeManifest(bytes.data(), bytes.size(), &manifest);
  out->manifest_ok = st.ok();
  if (!st.ok()) {
    out->manifest_problem = st.ToString();
  } else {
    out->schema_fingerprint = manifest.schema_fingerprint;
    out->sealed_answers = manifest.sealed_answers;
    out->manifest_retractions = manifest.retracted_ids;
    out->segments.reserve(manifest.segments.size());
    for (const ManifestSegment& entry : manifest.segments) {
      SegmentInspection seg;
      InspectSegment(directory, entry, &seg);
      out->segments.push_back(std::move(seg));
    }
  }

  // The journal tail is optional (a snapshot sealed at exit has none) and
  // its decoder is lenient by contract.
  if (ReadFileBytes(directory + "/journal.bin", &bytes).ok()) {
    out->journal_present = true;
    out->journal_bytes = bytes.size();
    JournalReplay replay;
    DecodeJournal(bytes.data(), bytes.size(), &replay);
    out->journal_truncated = replay.truncated;
    out->journal_records = replay.records.size();
    for (const JournalRecord& rec : replay.records) {
      out->journal_answers += rec.answers.size();
    }
    out->journal_retractions = replay.retracted_ids;
  }
  return Status::Ok();
}

std::string FormatInspection(const SnapshotInspection& inspection) {
  std::string out =
      StrFormat("snapshot %s\n", inspection.directory.c_str());
  if (!inspection.manifest_ok) {
    out += StrFormat("  MANIFEST: UNREADABLE (%s)\n",
                     inspection.manifest_problem.c_str());
  } else {
    out += StrFormat(
        "  MANIFEST: codec v%u, schema fingerprint %016llx, "
        "%llu sealed answers, %zu segment(s)\n",
        inspection.codec_version,
        static_cast<unsigned long long>(inspection.schema_fingerprint),
        static_cast<unsigned long long>(inspection.sealed_answers),
        inspection.segments.size());
  }
  for (const SegmentInspection& seg : inspection.segments) {
    if (seg.problem.empty()) {
      out += StrFormat("  %-16s %8llu answers  %8llu bytes  crc OK\n",
                       seg.file.c_str(),
                       static_cast<unsigned long long>(seg.decoded_count),
                       static_cast<unsigned long long>(seg.bytes));
    } else {
      out += StrFormat("  %-16s DAMAGED: %s\n", seg.file.c_str(),
                       seg.problem.c_str());
    }
  }
  if (inspection.journal_present) {
    out += StrFormat(
        "  journal.bin: %llu record(s), %llu answer(s), %llu "
        "retraction(s), %llu bytes%s\n",
        static_cast<unsigned long long>(inspection.journal_records),
        static_cast<unsigned long long>(inspection.journal_answers),
        static_cast<unsigned long long>(inspection.journal_retractions.size()),
        static_cast<unsigned long long>(inspection.journal_bytes),
        inspection.journal_truncated ? "  (TORN TAIL dropped)" : "");
  } else {
    out += "  journal.bin: absent\n";
  }
  const size_t retractions = inspection.manifest_retractions.size() +
                             inspection.journal_retractions.size();
  out += StrFormat(
      "  retraction table: %zu folded in manifest, %zu journal-only\n",
      inspection.manifest_retractions.size(),
      inspection.journal_retractions.size());
  if (retractions > 0) {
    out += "    ids:";
    size_t shown = 0;
    for (uint64_t id : inspection.manifest_retractions) {
      if (shown++ >= 16) break;
      out += StrFormat(" %llu", static_cast<unsigned long long>(id));
    }
    for (uint64_t id : inspection.journal_retractions) {
      if (shown >= 16) break;
      ++shown;
      out += StrFormat(" %llu*", static_cast<unsigned long long>(id));
    }
    if (shown >= 16 && retractions > 16) {
      out += StrFormat(" ... (%zu total; * = journal-only)", retractions);
    } else if (!inspection.journal_retractions.empty()) {
      out += "  (* = journal-only)";
    }
    out += "\n";
  }
  out += StrFormat("  verdict: %s\n",
                   inspection.healthy() ? "HEALTHY" : "DAMAGED");
  return out;
}

}  // namespace tcrowd::service
