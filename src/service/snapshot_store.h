#ifndef TCROWD_SERVICE_SNAPSHOT_STORE_H_
#define TCROWD_SERVICE_SNAPSHOT_STORE_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/answer.h"
#include "data/schema.h"
#include "inference/segment_codec.h"

namespace tcrowd::service {

/// Durability knobs, carried into the engine through InferenceArgs (and so
/// through ServiceConfig::inference). One plain struct, MAGPIE-style, so a
/// checkpoint directory plumbs through every layer in a single hand-off.
struct CheckpointArgs {
  /// Snapshot directory. Empty disables checkpointing entirely (the
  /// default: no persistence subsystem is even constructed).
  std::string directory;

  /// fsync segment files, manifest renames, and journal appends. Leave on
  /// for real durability; tests and benchmarks may clear it to measure the
  /// codec instead of the disk.
  bool fsync = true;

  /// Durable-compaction threshold: when a seal pushes the snapshot past
  /// this many segment files, they are merged into one (amortized O(1)
  /// per answer on the geometric seal schedule), bounding both the
  /// directory's file count and the per-seal manifest rewrite. <= 0
  /// disables durable compaction.
  int max_segment_files = 64;

  /// Owner-scoped snapshot namespace (0 = none). When non-zero the
  /// manifest's schema fingerprint is NamespacedFingerprint(shape, tag), so
  /// a directory written under one tag is refused under any other — the
  /// guard that keeps one shard of a multi-shard layout from silently
  /// restoring a sibling's equally-shaped snapshot (see docs/SHARDING.md).
  uint64_t namespace_tag = 0;

  bool enabled() const { return !directory.empty(); }
};

/// The durable side of the segmented answer log: an append-only snapshot
/// directory holding
///
///   MANIFEST          versioned, checksummed table of contents
///   seg-NNNNNN.bin    one immutable answer block per sealed checkpoint
///   journal.bin       framed tail-answer + retraction records since the
///                     last seal
///
/// Each sealed slice of the log is written once as a new segment file;
/// between seals every ingest-drained batch is appended to the journal,
/// so the durable state always covers everything the engine has absorbed
/// up to its last drain. Past CheckpointArgs::max_segment_files the
/// segment files are merged into one (durable compaction), so the
/// directory's file count — and the manifest each seal rewrites — stays
/// bounded for long-lived services. File names are never reused (a
/// monotonic index), so no write ever lands on a file a published
/// manifest still references; unreferenced leftovers from crashed writes
/// are swept on the next successful Open. The manifest is replaced
/// atomically (write temp + rename), and the journal is only reset AFTER
/// the manifest durably lists the segment covering it — a crash between
/// the two merely leaves journal records that replay skips as
/// already-sealed (their base ids are below the sealed count).
///
/// Recovery (`Open`) refuses loudly instead of guessing: a corrupt or
/// truncated manifest, a segment whose checksum or count disagrees with
/// the manifest, or a format-version/schema-fingerprint mismatch all
/// return a non-OK Status and leave `*recovered` empty. Only the journal
/// tail is forgiving (prefix recovery of whole records), because a torn
/// final append is the expected crash shape. See docs/PERSISTENCE.md.
///
/// Ownership/thread-safety: NOT internally synchronized; the owning
/// engine serializes all calls under its own mutex (the same discipline as
/// SegmentedAnswerStore).
class SnapshotStore {
 public:
  /// What Open() recovered from the directory.
  struct RecoveredLog {
    /// The full durable chronological answer log (segments, then journal).
    std::vector<Answer> answers;
    /// Sizes of the durable segment files, in manifest order; their sum is
    /// the sealed prefix of `answers`.
    std::vector<size_t> segment_sizes;
    /// Answers recovered from segment files (== sum of segment_sizes).
    size_t sealed_answers = 0;
    /// Log ids of every durable retraction (manifest table ∪ journal
    /// retraction records), sorted and deduplicated, each below
    /// `answers.size()`. The log in `answers` is NOT filtered — the caller
    /// decides which entries are live.
    std::vector<uint64_t> retracted_ids;
    /// True when a torn journal tail was dropped during replay.
    bool journal_truncated = false;
  };

  explicit SnapshotStore(CheckpointArgs args);
  ~SnapshotStore();

  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  /// Creates the directory if needed, loads (or initializes) the manifest,
  /// verifies every listed segment, replays the journal, and opens the
  /// journal for appending. Must be called exactly once, before any write.
  /// On error the store is unusable and nothing was recovered. A directory
  /// holding segment/journal data but no manifest is refused, never
  /// reinitialized — whatever deleted the manifest, the answer data is
  /// evidence, not scratch space.
  Status Open(const Schema& schema, int num_rows, RecoveredLog* recovered);

  /// Persists `answers[0, n)` — the newly sealed slice of the log, starting
  /// at global id durable_sealed() — as the next segment file, publishes it
  /// in the manifest, and resets the journal (its records are now covered
  /// by the segment).
  Status PersistSealed(const Answer* answers, size_t n);

  /// Appends one ingest batch (global ids [base_id, base_id + n)) to the
  /// journal.
  Status JournalAppend(uint64_t base_id, const Answer* answers, size_t n);

  /// Appends one retraction record (the global id of the answer being
  /// retracted) to the journal. The retraction is durable as soon as this
  /// returns; the next PersistSealed folds it into the manifest's
  /// retraction table.
  Status JournalRetract(uint64_t log_id);

  /// Answers durable in segment files / in the journal / in total.
  size_t durable_sealed() const { return manifest_.sealed_answers; }
  size_t durable_journaled() const { return journaled_; }
  size_t durable_total() const { return durable_sealed() + journaled_; }

  /// Durable retractions: folded into the manifest / still journal-only.
  size_t manifest_retractions() const { return manifest_.retracted_ids.size(); }
  size_t journal_retractions() const { return journal_retracted_.size(); }

  const std::string& directory() const { return args_.directory; }

  /// Removes every file this layout owns (MANIFEST, journal.bin,
  /// seg-*.bin) from `directory`, so a fresh run can start clean. Static:
  /// usable without (and before) Open. Missing directory is OK.
  static Status WipeDirectory(const std::string& directory);

 private:
  Status WriteManifest();
  /// Atomically replaces journal.bin with `bytes` (tmp + rename + directory
  /// fsync — the same publish discipline as the manifest) and reopens it
  /// for appends. The old journal stays intact on disk until the rename,
  /// so no crash window ever holds the tail's only copy in memory; the
  /// rename's directory fsync also makes the journal's directory entry
  /// durable from its very first creation.
  Status PublishJournal(const std::string& bytes);
  Status SyncFile(std::FILE* f, const std::string& what);
  /// fsync of the snapshot directory itself (publishes renames/creations).
  void SyncDirectory();
  /// Writes `bytes` to `path` (truncating) and flushes/fsyncs per args_.
  Status WriteFileDurable(const std::string& path, const std::string& bytes);
  /// Durably writes one answer block as the next segment file (fresh
  /// name); on success appends its manifest entry (manifest NOT yet
  /// written).
  Status WriteSegmentFile(const Answer* answers, size_t n);
  /// Merges every durable segment file into one (re-reading and
  /// re-verifying them), publishes the single-entry manifest, and deletes
  /// the replaced files. O(sealed answers); amortized by the threshold.
  Status CompactSegments();
  /// Removes seg-*.bin files the manifest does not reference (leftovers
  /// of writes that crashed before publishing). Successful-Open only.
  void SweepOrphanSegments();

  const CheckpointArgs args_;
  SnapshotManifest manifest_;
  std::FILE* journal_ = nullptr;  ///< open for append after Open()
  size_t journaled_ = 0;          ///< answers in the current journal
  /// Retraction ids recorded in the current journal, not yet folded into
  /// the manifest's retraction table.
  std::vector<uint64_t> journal_retracted_;
  size_t next_file_index_ = 0;    ///< monotonic; names are never reused
  bool opened_ = false;
};

}  // namespace tcrowd::service

#endif  // TCROWD_SERVICE_SNAPSHOT_STORE_H_
