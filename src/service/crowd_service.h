#ifndef TCROWD_SERVICE_CROWD_SERVICE_H_
#define TCROWD_SERVICE_CROWD_SERVICE_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "data/answer.h"
#include "platform/metrics.h"
#include "service/incremental_engine.h"
#include "service/task_router.h"

namespace tcrowd {
class EventRecorder;
}  // namespace tcrowd

namespace tcrowd::service {

/// Lifecycle of one task (cell) inside the service.
enum class TaskState {
  kOpen,       ///< No answers, no outstanding leases.
  kAssigned,   ///< At least one lease is out with a worker session.
  kAnswered,   ///< Has answers, none in flight, below its target count.
  kFinalized,  ///< Reached its per-task answer target; no longer assignable.
};

const char* TaskStateName(TaskState state);

struct ServiceConfig {
  /// A task is finalized once this many answers were accepted for it.
  int target_answers_per_task = 5;
  /// Global answer budget; -1 derives target_answers_per_task * num_cells.
  /// Outstanding leases count against the budget (committed accounting), so
  /// the service never hands out work it cannot pay for.
  int64_t max_total_answers = -1;
  /// Threads of the service-owned pool running background EM refreshes.
  int num_threads = 2;
  /// Lease deadline: a session with no activity (StartSession /
  /// RequestTasks / SubmitAnswer) for longer than this is expired — its
  /// unanswered leases return to the open pool and their budget commitment
  /// is refunded, exactly as if the worker had called EndSession. Expiry is
  /// enforced lazily on the request paths (a watermark caps the sweep at
  /// once per deadline period, so reclamation there may lag by up to one
  /// extra period) and exactly on demand via
  /// CrowdService::ExpireStaleSessions. <= 0 disables expiry.
  double session_lease_timeout_seconds = 0.0;
  /// Test seam: monotonic nanosecond clock used for lease deadlines.
  /// Defaults to std::chrono::steady_clock when unset.
  std::function<int64_t()> clock_nanos;
  /// Deterministic event recorder (unowned; must outlive the service).
  /// When set, every nondeterministic service decision — session ids,
  /// granted leases, acceptance statuses, expiry sweeps, the Finalize
  /// digest — is appended to the event log under the service mutex, so a
  /// replay driver reproduces the run bit-identically. Null disables
  /// recording. The engine receives the same recorder for seal events.
  EventRecorder* recorder = nullptr;
  InferenceArgs inference;
  RouterOptions router;
};

/// Aggregate state snapshot, exported next to the metrics registry.
struct ServiceStats {
  int tasks_open = 0;
  int tasks_assigned = 0;
  int tasks_answered = 0;
  int tasks_finalized = 0;
  int64_t sessions_started = 0;
  int64_t sessions_active = 0;
  int64_t sessions_expired = 0;
  int64_t answers_accepted = 0;
  int64_t answers_rejected = 0;
  /// Accepted answers later retracted (their budget was refunded; they are
  /// no longer part of answers_accepted/budget_spent).
  int64_t answers_retracted = 0;
  /// Answers recovered from the checkpoint directory at startup (already
  /// counted in budget_spent; their tasks may start finalized).
  int64_t answers_restored = 0;
  int64_t assignments = 0;
  int64_t backfilled = 0;
  int64_t budget_spent = 0;
  int64_t budget_remaining = 0;
  int engine_refreshes = 0;
};

/// The serving surface drivers program against: everything the network
/// front-end (net::Server), the load generator, and the tools need from a
/// crowd-serving backend, whether one engine serves the whole table
/// (CrowdService) or the table is partitioned across N engine shards behind
/// the ShardRouter façade (src/service/shard_router.h). Keeping the surface
/// abstract is what lets `tcrowd_serverd --shards=N` swap the topology
/// without the event loop knowing.
///
/// Do not conflate this with ShardBackend (src/service/shard_backend.h):
/// ServingBackend is the NORTH-facing façade (drivers/front-ends talk DOWN
/// into a whole serving topology, GLOBAL row coordinates, thread-safe —
/// every implementation serializes internally, so concurrent driver
/// threads may call it freely), while ShardBackend is the SOUTH-facing
/// seam (the ShardRouter talks DOWN to ONE shard — in-process or a remote
/// daemon — LOCAL row coordinates, NOT thread-safe: the router serializes
/// calls under its own mutex). A ShardRouter is a ServingBackend built on
/// N ShardBackends.
class ServingBackend {
 public:
  using SessionId = int64_t;

  virtual ~ServingBackend() = default;

  virtual SessionId StartSession(WorkerId worker) = 0;
  virtual std::vector<CellRef> RequestTasks(SessionId session, int k) = 0;
  virtual Status SubmitAnswer(SessionId session, CellRef cell,
                              const Value& value) = 0;
  virtual std::vector<Status> SubmitAnswerBatch(
      SessionId session,
      const std::vector<std::pair<CellRef, Value>>& items) = 0;
  virtual Status RetractAnswer(WorkerId worker, CellRef cell) = 0;
  /// Replay seam: books exactly `cells` as leases without consulting any
  /// routing policy (see CrowdService::ApplyRecordedLeases).
  virtual Status ApplyRecordedLeases(SessionId session,
                                     const std::vector<CellRef>& cells) = 0;
  virtual Status EndSession(SessionId session) = 0;
  virtual int ExpireStaleSessions() = 0;
  virtual bool Drained() const = 0;
  virtual ServiceStats Stats() const = 0;
  virtual Status checkpoint_status() const = 0;
  virtual InferenceResult Finalize() = 0;
  /// The ordered live answer log (arrival order, retractions already
  /// removed) — the gather seam behind the merged Finalize and the
  /// kLogGather wire request: a router daemon answers it from its merged
  /// ledger, a single-engine daemon from its engine snapshot. Blocks only
  /// briefly (one mutex + a copy), never on an EM fit.
  virtual std::vector<Answer> GatherAnswerLog() = 0;
  virtual MetricsRegistry& metrics() = 0;
  virtual const Schema& schema() const = 0;
  virtual int num_rows() const = 0;

  /// Admission-control meters (net::Server backpressure): answers absorbed
  /// since the last inference refresh (the laggiest shard in a sharded
  /// backend), an explicit refresh request that clears the meter, the total
  /// absorbed answer count, and the staleness threshold the in-flight
  /// budget is derived from.
  virtual int64_t answers_since_refresh() = 0;
  virtual void RequestRefresh() = 0;
  virtual uint64_t num_answers() = 0;
  virtual int staleness_threshold() const = 0;
};

/// The online crowdsourcing façade over the batch pipeline: workers open
/// sessions, lease the most informative tasks from the TaskRouter, submit
/// answers that feed the IncrementalInferenceEngine, and tasks progress
/// open → assigned → answered → finalized under per-task and global budget
/// accounting.
///
/// Durability: when config.inference.checkpoint names a directory, the
/// engine restores the durable answer log at construction and the service
/// rebuilds its task/budget ledger from it (per-cell answer counts,
/// budget_spent, finalized tasks) — so a restarted service resumes exactly
/// where the durable log left off. Sessions and leases are deliberately
/// NOT persisted: they are seconds-lived worker state, and the lease
/// accounting self-heals (a crashed service's in-flight leases simply
/// never existed in the restarted one). See docs/PERSISTENCE.md.
///
/// Thread-safety: all public methods may be called from concurrent driver
/// threads. Request handling is serialized on one service mutex (policies
/// are stateful); truth-inference refreshes run asynchronously on the
/// service's own common::ThreadPool and never block the request path.
class CrowdService : public ServingBackend {
 public:
  using SessionId = ServingBackend::SessionId;

  CrowdService(const Schema& schema, int num_rows,
               std::unique_ptr<AssignmentPolicy> policy,
               ServiceConfig config);
  ~CrowdService() override;

  CrowdService(const CrowdService&) = delete;
  CrowdService& operator=(const CrowdService&) = delete;

  /// Opens a worker session. Ids are unique for the service's lifetime.
  /// Never blocks on inference.
  SessionId StartSession(WorkerId worker) override;

  /// Leases up to `k` tasks to the session. Empty when the session is
  /// unknown/closed/expired, the budget is exhausted, or nothing is
  /// assignable. May block on an inline policy refit the first time the
  /// routing policy needs its model.
  std::vector<CellRef> RequestTasks(SessionId session, int k) override;

  /// Accepts one answer for a cell the session holds a lease on. Rejects
  /// answers without a lease, with a mismatched value type, or an
  /// out-of-range label. Never blocks on an EM refresh in the default
  /// async configuration (refreshes run on the service's own pool); with
  /// inference.async_refresh = false the staleness-crossing call runs the
  /// refresh inline.
  Status SubmitAnswer(SessionId session, CellRef cell,
                      const Value& value) override;

  /// Batched ingestion: accepts a whole page of answers from one session
  /// under a single acquisition of the service mutex, then hands the
  /// accepted ones to the inference engine in one
  /// IncrementalInferenceEngine::SubmitAnswerBatch call (one ingest-queue
  /// pass instead of per-answer locking). Validation, task-state
  /// transitions, budget accounting, and router warm-up are identical to
  /// calling SubmitAnswer once per item, in item order — a duplicate cell
  /// within the batch consumes the lease with its first occurrence and is
  /// rejected on the second. Returns one Status per item, aligned with the
  /// input. Never blocks on an EM refresh in async mode.
  std::vector<Status> SubmitAnswerBatch(
      SessionId session,
      const std::vector<std::pair<CellRef, Value>>& items) override;

  /// Retracts the newest accepted answer `worker` gave on `cell` — the
  /// online tombstone path: the engine tombstones the answer in its
  /// segmented store (journaling a durable retraction record when
  /// checkpointing is on), the service ledger refunds the answer's budget
  /// spend/commitment, and a task that only reached its target thanks to
  /// the retracted answer is un-finalized so the router can backfill it.
  /// Sessionless by design (a worker may disavow an answer long after the
  /// session that produced it expired). NotFound when the worker has no
  /// live answer on the cell. Runs under the service mutex end to end —
  /// retraction is the rare slow path, consistency wins.
  Status RetractAnswer(WorkerId worker, CellRef cell) override;

  /// Replay seam: books exactly `cells` as leases on the session — task
  /// lease counts, budget commitment, session state — WITHOUT consulting
  /// the router. Replay drives lease grants from the recorded log through
  /// this instead of RequestTasks, so routing decisions that depended on
  /// the original run's async refresh timing are reproduced verbatim.
  /// Rejects an unknown session or an out-of-range cell.
  Status ApplyRecordedLeases(SessionId session,
                             const std::vector<CellRef>& cells) override;

  /// Closes the session; unanswered leases return to the open pool (and
  /// their budget commitment is refunded) so backfill can re-route them.
  /// Never blocks on inference.
  Status EndSession(SessionId session) override;

  /// Sweeps sessions whose lease deadline has passed (workers that never
  /// called EndSession), releasing their leases and refunding their budget
  /// commitments. Runs automatically on every StartSession / RequestTasks /
  /// SubmitAnswer; exposed for drivers that want deterministic reclamation
  /// (e.g. between replay phases). Returns the number of sessions expired
  /// by this sweep. No-op when session_lease_timeout_seconds <= 0.
  int ExpireStaleSessions() override;

  TaskState task_state(CellRef cell) const;
  int AnswerCount(CellRef cell) const;
  /// True when no further assignment can ever happen (budget exhausted or
  /// every task finalized).
  bool Drained() const override;

  /// Aggregate snapshot; takes the service mutex briefly, never blocks on
  /// inference.
  ServiceStats Stats() const override;
  /// Health of the persistence subsystem (OK when checkpointing is
  /// disabled). A restore failure surfaces here — the service still comes
  /// up empty and serving, it just is not durable.
  Status checkpoint_status() const override {
    return engine_->checkpoint_status();
  }
  /// Answers recovered from the checkpoint directory at construction.
  int64_t restored_answers() const {
    return static_cast<int64_t>(engine_->restored_answers());
  }
  MetricsRegistry& metrics() override { return metrics_; }
  IncrementalInferenceEngine& engine() { return *engine_; }
  const Schema& schema() const override { return schema_; }
  int num_rows() const override { return num_rows_; }
  const ServiceConfig& config() const { return config_; }

  // ServingBackend admission meters: thin forwards onto the single engine.
  int64_t answers_since_refresh() override {
    return engine_->answers_since_refresh();
  }
  void RequestRefresh() override { engine_->RequestRefresh(); }
  uint64_t num_answers() override { return engine_->num_answers(); }
  int staleness_threshold() const override {
    return config_.inference.staleness_threshold;
  }

  /// Waits out pending refreshes and returns the final batch-converged
  /// truth inference over everything collected. Blocks for a full EM fit;
  /// concurrent submits keep being accepted but are not part of the
  /// returned result's snapshot.
  InferenceResult Finalize() override;

  /// The engine's live answers in arrival order (ServingBackend contract).
  std::vector<Answer> GatherAnswerLog() override {
    return engine_->SnapshotAnswers().answers();
  }

 private:
  struct TaskEntry {
    int answers = 0;
    int leases = 0;
    bool finalized = false;
  };
  struct Session {
    WorkerId worker = -1;
    std::vector<CellRef> leases;
    int64_t last_active_nanos = 0;  ///< lease deadline base (config clock)
  };

  TaskState StateOf(const TaskEntry& task) const;
  bool Assignable(const TaskEntry& task) const;
  TaskEntry& TaskAt(CellRef cell);
  const TaskEntry& TaskAt(CellRef cell) const;
  bool DrainedLocked() const;
  int64_t NowNanos() const;
  /// Releases the session's leases and refunds their commitments; `mu_`
  /// must be held. Does not erase the session from sessions_.
  void ReleaseLeasesLocked(Session* session);
  /// Validates and books one answer (lease check, type check, task/budget
  /// accounting, router warm-up); `mu_` must be held. On success fills
  /// `*out` for the engine hand-off. Shared by SubmitAnswer and
  /// SubmitAnswerBatch so the two paths stay accounting-identical.
  Status AcceptAnswerLocked(Session* session, CellRef cell,
                            const Value& value, Answer* out);
  /// Expires every session idle past the lease deadline; `mu_` must be
  /// held. Returns the number of sessions expired. Unless `force`, the
  /// scan is skipped while the sweep watermark proves nothing can be
  /// overdue yet (keeps the request hot paths O(1) in session count).
  int ExpireStaleSessionsLocked(int64_t now, bool force = false);

  const Schema schema_;
  const int num_rows_;
  ServiceConfig config_;

  MetricsRegistry metrics_;
  // Cached hot-path metric handles (stable for the registry's lifetime).
  Counter* sessions_started_;
  Counter* sessions_ended_;
  Counter* sessions_expired_;
  Counter* tasks_assigned_;
  Counter* answers_accepted_;
  Counter* answers_rejected_;
  Counter* answers_retracted_;
  Counter* answer_batches_;
  Counter* answers_restored_;
  Counter* tasks_finalized_;
  LatencyStats* request_latency_;
  LatencyStats* submit_latency_;

  // Order matters: engine_ schedules jobs on pool_ and is declared after it,
  // so it is destroyed first and can drain its in-flight refresh.
  ThreadPool pool_;
  std::unique_ptr<IncrementalInferenceEngine> engine_;
  TaskRouter router_;

  mutable std::mutex mu_;
  AnswerSet answers_;                ///< canonical log; engine keeps a copy
  std::vector<TaskEntry> tasks_;     ///< row-major
  std::unordered_map<SessionId, Session> sessions_;
  SessionId next_session_ = 1;
  int64_t sessions_started_total_ = 0;
  int64_t sessions_expired_total_ = 0;
  int64_t last_sweep_nanos_ = 0;  ///< watermark of the last expiry scan
  int64_t budget_spent_ = 0;      ///< accepted answers (net of retractions)
  int64_t budget_committed_ = 0;  ///< accepted + outstanding leases
  int64_t rejected_ = 0;
  int64_t retractions_total_ = 0;
  int finalized_count_ = 0;
};

}  // namespace tcrowd::service

#endif  // TCROWD_SERVICE_CROWD_SERVICE_H_
