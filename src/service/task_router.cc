#include "service/task_router.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "platform/trace.h"

namespace tcrowd::service {

const char* BackfillStrategyName(BackfillStrategy strategy) {
  switch (strategy) {
    case BackfillStrategy::kNone:
      return "none";
    case BackfillStrategy::kLeastAnswered:
      return "least-answered";
    case BackfillStrategy::kRandom:
      return "random";
  }
  return "?";
}

TaskRouter::TaskRouter(std::unique_ptr<AssignmentPolicy> policy,
                       RouterOptions options)
    : policy_(std::move(policy)),
      options_(options),
      rng_(options.seed) {
  TCROWD_CHECK(policy_ != nullptr);
  options_.refresh_every_answers = std::max(1, options_.refresh_every_answers);
}

std::vector<CellRef> TaskRouter::Route(const Schema& schema,
                                       const AnswerSet& answers,
                                       WorkerId worker, int k,
                                       const std::vector<CellRef>& unavailable) {
  std::vector<CellRef> picked;
  if (k <= 0) return picked;
  if (!refreshed_once_ && !answers.empty()) {
    policy_->Refresh(schema, answers);
    refreshed_once_ = true;
  }
  // `exclude` accumulates the unavailable cells plus this request's own
  // picks, so the policy never hands the same cell out twice in one batch.
  std::vector<CellRef> exclude = unavailable;
  picked.reserve(k);
  for (int n = 0; n < k; ++n) {
    CellRef cell;
    if (!policy_->SelectTaskExcluding(schema, answers, worker, exclude,
                                      &cell)) {
      break;
    }
    picked.push_back(cell);
    exclude.push_back(cell);
  }
  const size_t policy_picked = picked.size();
  if (static_cast<int>(picked.size()) < k &&
      options_.backfill != BackfillStrategy::kNone) {
    Backfill(answers, worker, k, unavailable, &picked);
  }
  TCROWD_TRACE(kRouter, kDebug, "route", policy_picked,
               picked.size() - policy_picked);
  return picked;
}

void TaskRouter::Backfill(const AnswerSet& answers, WorkerId worker, int k,
                          const std::vector<CellRef>& unavailable,
                          std::vector<CellRef>* picked) {
  // A policy may come up short even though legal candidates remain (e.g. it
  // declines cells whose gain is degenerate). Keep the worker busy anyway.
  std::vector<CellRef> exclude = unavailable;
  exclude.insert(exclude.end(), picked->begin(), picked->end());
  std::vector<CellRef> candidates = CandidateCells(answers, worker, exclude);
  if (candidates.empty()) return;
  rng_.Shuffle(&candidates);  // random tie-break among equals
  if (options_.backfill == BackfillStrategy::kLeastAnswered) {
    std::stable_sort(candidates.begin(), candidates.end(),
                     [&answers](const CellRef& a, const CellRef& b) {
                       return answers.CellAnswerCount(a.row, a.col) <
                              answers.CellAnswerCount(b.row, b.col);
                     });
  }
  for (const CellRef& cell : candidates) {
    if (static_cast<int>(picked->size()) >= k) break;
    picked->push_back(cell);
    ++backfilled_;
  }
}

void TaskRouter::OnAnswer(const Schema& schema, const AnswerSet& answers,
                          const Answer& answer) {
  policy_->Observe(schema, answers, answer);
  ++answers_since_refresh_;
  if (answers_since_refresh_ >= options_.refresh_every_answers) {
    policy_->Refresh(schema, answers);
    refreshed_once_ = true;
    ++refresh_count_;
    answers_since_refresh_ = 0;
  }
}

}  // namespace tcrowd::service
