#ifndef TCROWD_SERVICE_REPLAY_H_
#define TCROWD_SERVICE_REPLAY_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "platform/event_log.h"
#include "service/crowd_service.h"

namespace tcrowd::service {

/// Outcome of re-driving a CrowdService from a recorded event log (see
/// docs/OBSERVABILITY.md). The verdict is zero-tolerance: a replay is
/// faithful only when every replayed acceptance status matched the recorded
/// one AND the Finalize() truth digests are bit-identical.
struct ReplayReport {
  uint64_t events_applied = 0;
  /// The log's tail was torn or corrupt; the clean prefix was replayed.
  bool log_truncated = false;

  // kRunStart header echo (how the recording run was parameterized).
  uint64_t seed = 0;
  std::string policy;
  std::string world;
  /// Checkpoint-recovered answers re-injected through the live submit path.
  uint64_t restored_bootstrapped = 0;

  uint64_t sessions_replayed = 0;
  uint64_t leases_replayed = 0;
  uint64_t answers_offered = 0;
  uint64_t answers_accepted = 0;
  uint64_t retractions_replayed = 0;

  /// Replayed acceptance statuses that differed from the recorded ones.
  uint64_t status_divergences = 0;
  std::string first_divergence;

  /// kFinalize comparison. A log with no finalize event (a crash capture)
  /// replays through the crash point: reached_finalize stays false and the
  /// digest fields are meaningless.
  bool reached_finalize = false;
  bool digest_match = false;
  uint64_t recorded_digest = 0;
  uint64_t replayed_digest = 0;
  uint64_t recorded_answer_count = 0;
  uint64_t replayed_answer_count = 0;

  /// The bit-identity verdict: no status divergence, and — when the log
  /// recorded a Finalize — matching digest and answer count.
  bool ok() const {
    return status_divergences == 0 &&
           (!reached_finalize ||
            (digest_match &&
             recorded_answer_count == replayed_answer_count));
  }
};

/// Locates the log's kRunStart header (null when the log has none). The
/// header carries the world recipe a driver needs BEFORE it can construct
/// the service to replay into.
const RecordedEvent* FindRunStart(const EventLogReplay& log);

/// Re-drives `service` from the decoded log, event by event, and fills
/// `*report`. The service must be freshly constructed for the recorded
/// world: same schema/rows (enforced via the recorded fingerprint), no
/// checkpoint restore, no recorder, lease expiry disabled. Lease grants go
/// through CrowdService::ApplyRecordedLeases rather than the router, so the
/// original run's refresh timing cannot perturb the replay — which is what
/// makes the digest comparison thread-count independent.
///
/// Returns non-OK only for a structurally unusable log (fingerprint
/// mismatch, lease event for a never-started session, restored-answer
/// bootstrap failure). Status divergences and digest mismatches are NOT
/// errors — they are the report's findings.
Status ReplayEvents(const EventLogReplay& log, CrowdService* service,
                    ReplayReport* report);

/// Convenience wrapper: read + decode `path`, then ReplayEvents.
Status ReplayEventLogFile(const std::string& path, CrowdService* service,
                          ReplayReport* report);

}  // namespace tcrowd::service

#endif  // TCROWD_SERVICE_REPLAY_H_
