#include "service/snapshot_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "platform/trace.h"

namespace tcrowd::service {

namespace fs = std::filesystem;

namespace {

constexpr const char kManifestName[] = "MANIFEST";
constexpr const char kManifestTmpName[] = "MANIFEST.tmp";
constexpr const char kJournalName[] = "journal.bin";
constexpr const char kJournalTmpName[] = "journal.tmp";

std::string SegmentFileName(size_t index) {
  return StrFormat("seg-%06zu.bin", index);
}

bool IsSegmentFileName(const std::string& name) {
  return name.rfind("seg-", 0) == 0 && name.size() > 8 &&
         name.substr(name.size() - 4) == ".bin";
}

/// Index encoded in a segment file name; 0 for malformed names (safe: the
/// caller only takes a max against real indices).
size_t ParseSegmentIndex(const std::string& name) {
  if (!IsSegmentFileName(name)) return 0;
  return static_cast<size_t>(
      std::strtoull(name.c_str() + 4, nullptr, 10));
}

Status ReadFileBytes(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError(
        StrFormat("cannot open %s: %s", path.c_str(), std::strerror(errno)));
  }
  out->clear();
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::IoError(StrFormat("read error on %s", path.c_str()));
  }
  return Status::Ok();
}

}  // namespace

SnapshotStore::SnapshotStore(CheckpointArgs args) : args_(std::move(args)) {}

SnapshotStore::~SnapshotStore() {
  if (journal_ != nullptr) std::fclose(journal_);
}

Status SnapshotStore::SyncFile(std::FILE* f, const std::string& what) {
  if (std::fflush(f) != 0) {
    return Status::IoError(StrFormat("flush failed for %s", what.c_str()));
  }
  if (args_.fsync && ::fsync(::fileno(f)) != 0) {
    return Status::IoError(StrFormat("fsync failed for %s: %s", what.c_str(),
                                     std::strerror(errno)));
  }
  return Status::Ok();
}

void SnapshotStore::SyncDirectory() {
  if (!args_.fsync) return;
  int dfd = ::open(args_.directory.c_str(), O_RDONLY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

Status SnapshotStore::WriteFileDurable(const std::string& path,
                                       const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError(
        StrFormat("cannot write %s: %s", path.c_str(), std::strerror(errno)));
  }
  size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  Status st = written == bytes.size()
                  ? SyncFile(f, path)
                  : Status::IoError(StrFormat("short write to %s",
                                              path.c_str()));
  std::fclose(f);
  return st;
}

Status SnapshotStore::WriteManifest() {
  TCROWD_TRACE(kCheckpoint, kInfo, "manifest write",
               manifest_.sealed_answers, manifest_.segments.size());
  std::string bytes;
  EncodeManifest(manifest_, &bytes);
  fs::path dir(args_.directory);
  std::string tmp = (dir / kManifestTmpName).string();
  std::string final_path = (dir / kManifestName).string();

  TCROWD_RETURN_IF_ERROR(WriteFileDurable(tmp, bytes));

  // Atomic publish: readers see either the old or the new manifest, never a
  // torn one. The directory fsync makes the rename itself durable.
  std::error_code ec;
  fs::rename(tmp, final_path, ec);
  if (ec) {
    return Status::IoError(StrFormat("rename %s -> %s failed: %s",
                                     tmp.c_str(), final_path.c_str(),
                                     ec.message().c_str()));
  }
  SyncDirectory();
  return Status::Ok();
}

Status SnapshotStore::PublishJournal(const std::string& bytes) {
  if (journal_ != nullptr) {
    std::fclose(journal_);
    journal_ = nullptr;
  }
  fs::path dir(args_.directory);
  std::string tmp = (dir / kJournalTmpName).string();
  std::string final_path = (dir / kJournalName).string();

  // Same tmp+rename discipline as the manifest: the old journal's bytes
  // stay on disk until the new content is durable, so no crash in this
  // window can lose the tail; the directory fsync also makes journal.bin's
  // directory entry itself durable (including its very first creation).
  TCROWD_RETURN_IF_ERROR(WriteFileDurable(tmp, bytes));
  std::error_code ec;
  fs::rename(tmp, final_path, ec);
  if (ec) {
    return Status::IoError(StrFormat("rename %s -> %s failed: %s",
                                     tmp.c_str(), final_path.c_str(),
                                     ec.message().c_str()));
  }
  SyncDirectory();

  journal_ = std::fopen(final_path.c_str(), "ab");
  if (journal_ == nullptr) {
    return Status::IoError(StrFormat("cannot reopen %s: %s",
                                     final_path.c_str(),
                                     std::strerror(errno)));
  }
  return Status::Ok();
}

Status SnapshotStore::Open(const Schema& schema, int num_rows,
                           RecoveredLog* recovered) {
  TCROWD_CHECK(!opened_);
  TCROWD_CHECK(args_.enabled());
  *recovered = RecoveredLog();

  std::error_code ec;
  fs::create_directories(args_.directory, ec);
  if (ec) {
    return Status::IoError(StrFormat("cannot create snapshot directory %s: %s",
                                     args_.directory.c_str(),
                                     ec.message().c_str()));
  }
  fs::path dir(args_.directory);
  uint64_t fingerprint = SchemaFingerprint(schema, num_rows);
  if (args_.namespace_tag != 0) {
    fingerprint = NamespacedFingerprint(fingerprint, args_.namespace_tag);
  }

  std::string manifest_path = (dir / kManifestName).string();
  if (fs::exists(manifest_path)) {
    std::string bytes;
    TCROWD_RETURN_IF_ERROR(ReadFileBytes(manifest_path, &bytes));
    TCROWD_RETURN_IF_ERROR(
        DecodeManifest(bytes.data(), bytes.size(), &manifest_));
    if (manifest_.schema_fingerprint != fingerprint) {
      return Status::FailedPrecondition(StrFormat(
          "snapshot %s was written for a different schema/table shape "
          "(fingerprint %016llx, serving %016llx)",
          args_.directory.c_str(),
          static_cast<unsigned long long>(manifest_.schema_fingerprint),
          static_cast<unsigned long long>(fingerprint)));
    }
    for (const ManifestSegment& seg : manifest_.segments) {
      next_file_index_ =
          std::max(next_file_index_, ParseSegmentIndex(seg.file) + 1);
    }
  } else {
    // Only a truly empty directory may be initialized. Segment or journal
    // data without a manifest means the manifest was lost, not that this
    // is a fresh store — reinitializing would truncate the journal and
    // eventually bury the old segments, destroying the one copy of the
    // history. Refuse; the operator decides (restore the manifest, or
    // WipeDirectory deliberately).
    std::error_code list_ec;
    for (const fs::directory_entry& entry :
         fs::directory_iterator(args_.directory, list_ec)) {
      std::string name = entry.path().filename().string();
      std::error_code size_ec;
      bool has_data =
          IsSegmentFileName(name) ||
          (name == kJournalName &&
           fs::file_size(entry.path(), size_ec) > 0 && !size_ec);
      if (has_data) {
        return Status::FailedPrecondition(StrFormat(
            "snapshot %s holds answer data (%s) but no MANIFEST; refusing "
            "to reinitialize over it",
            args_.directory.c_str(), name.c_str()));
      }
    }
    if (list_ec) {
      // A listing we could not complete proves nothing about the
      // directory's emptiness; initializing blind could bury real data.
      return Status::IoError(StrFormat("cannot list %s: %s",
                                       args_.directory.c_str(),
                                       list_ec.message().c_str()));
    }
    manifest_ = SnapshotManifest();
    manifest_.schema_fingerprint = fingerprint;
    TCROWD_RETURN_IF_ERROR(WriteManifest());
  }

  // Segment files: every byte is checksum-verified twice over (manifest CRC
  // of the file, frame CRC inside it) before an answer is trusted.
  for (const ManifestSegment& seg : manifest_.segments) {
    std::string path = (dir / seg.file).string();
    std::string bytes;
    TCROWD_RETURN_IF_ERROR(ReadFileBytes(path, &bytes));
    if (Crc32(bytes.data(), bytes.size()) != seg.crc) {
      return Status::IoError(StrFormat(
          "segment %s: file checksum disagrees with manifest", path.c_str()));
    }
    size_t before = recovered->answers.size();
    Status st = DecodeAnswerBlock(bytes.data(), bytes.size(),
                                  &recovered->answers);
    if (!st.ok()) {
      return Status(st.code(),
                    StrFormat("segment %s: %s", path.c_str(),
                              st.message().c_str()));
    }
    size_t count = recovered->answers.size() - before;
    if (count != seg.count) {
      return Status::IoError(StrFormat(
          "segment %s: holds %zu answers, manifest says %llu", path.c_str(),
          count, static_cast<unsigned long long>(seg.count)));
    }
    recovered->segment_sizes.push_back(count);
  }
  recovered->sealed_answers = recovered->answers.size();
  TCROWD_CHECK(recovered->sealed_answers == manifest_.sealed_answers);

  // Journal replay: keep the longest clean prefix of whole records, skip
  // records a durable segment already covers (a crash between manifest
  // publish and journal reset leaves exactly those behind).
  std::string journal_path = (dir / kJournalName).string();
  std::vector<Answer> tail;
  std::vector<uint64_t> journal_retractions;
  if (fs::exists(journal_path)) {
    std::string bytes;
    TCROWD_RETURN_IF_ERROR(ReadFileBytes(journal_path, &bytes));
    JournalReplay replay;
    TCROWD_RETURN_IF_ERROR(DecodeJournal(bytes.data(), bytes.size(), &replay));
    recovered->journal_truncated = replay.truncated;
    uint64_t next = manifest_.sealed_answers;
    for (const JournalRecord& rec : replay.records) {
      uint64_t rec_end = rec.base_id + rec.answers.size();
      if (rec_end <= next) continue;  // fully sealed already
      if (rec.base_id > next) {
        // A gap means lost records; everything after is unanchored.
        recovered->journal_truncated = true;
        break;
      }
      size_t skip = static_cast<size_t>(next - rec.base_id);
      tail.insert(tail.end(), rec.answers.begin() + skip, rec.answers.end());
      next = rec_end;
    }
    recovered->answers.insert(recovered->answers.end(), tail.begin(),
                              tail.end());
    journal_retractions = std::move(replay.retracted_ids);
  }

  // Durable retractions = manifest table ∪ journal records, sorted,
  // deduplicated, and bounded by the recovered log (a retraction naming an
  // answer that never became durable is moot — the answer it killed died
  // with the torn tail).
  std::vector<uint64_t> dead = manifest_.retracted_ids;
  const uint64_t recovered_total = recovered->answers.size();
  for (uint64_t id : journal_retractions) {
    if (id < recovered_total) dead.push_back(id);
  }
  std::sort(dead.begin(), dead.end());
  dead.erase(std::unique(dead.begin(), dead.end()), dead.end());
  recovered->retracted_ids = dead;

  // Republish the journal as one clean record (drops torn tails and sealed
  // leftovers for good) — atomically, so the tail's only durable copy is
  // never mid-air — then keep it open for appends. Journal retractions the
  // manifest has not folded yet must ride along, or a crash before the
  // next seal would resurrect the retracted answers.
  std::string clean;
  if (!tail.empty()) {
    EncodeJournalRecord(manifest_.sealed_answers, tail.data(), tail.size(),
                        &clean);
  }
  journal_retracted_.clear();
  for (uint64_t id : dead) {
    if (!std::binary_search(manifest_.retracted_ids.begin(),
                            manifest_.retracted_ids.end(), id)) {
      EncodeRetractionRecord(id, &clean);
      journal_retracted_.push_back(id);
    }
  }
  TCROWD_RETURN_IF_ERROR(PublishJournal(clean));
  journaled_ = tail.size();
  SweepOrphanSegments();
  opened_ = true;
  return Status::Ok();
}

void SnapshotStore::SweepOrphanSegments() {
  // Leftovers of writes that crashed before their manifest publish
  // (persist or durable compaction). Only after a fully successful load —
  // a failed Open must leave every byte in place as evidence.
  std::error_code ec;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(args_.directory, ec)) {
    std::string name = entry.path().filename().string();
    if (!IsSegmentFileName(name)) continue;
    bool referenced = false;
    for (const ManifestSegment& seg : manifest_.segments) {
      if (seg.file == name) {
        referenced = true;
        break;
      }
    }
    if (!referenced) {
      std::error_code rm_ec;
      fs::remove(entry.path(), rm_ec);
    }
  }
}

Status SnapshotStore::WriteSegmentFile(const Answer* answers, size_t n) {
  // Fresh name every time: no write ever lands on a file a published
  // manifest might still reference, so a crash mid-write can only leave an
  // unreferenced orphan (swept at the next Open).
  std::string name = SegmentFileName(next_file_index_++);
  std::string path = (fs::path(args_.directory) / name).string();
  TCROWD_TRACE(kCheckpoint, kInfo, "segment write", n, next_file_index_ - 1);

  std::string bytes;
  EncodeAnswerBlock(answers, n, &bytes);
  TCROWD_RETURN_IF_ERROR(WriteFileDurable(path, bytes));

  ManifestSegment seg;
  seg.file = std::move(name);
  seg.count = n;
  seg.crc = Crc32(bytes.data(), bytes.size());
  manifest_.segments.push_back(std::move(seg));
  return Status::Ok();
}

Status SnapshotStore::CompactSegments() {
  // Re-read and re-verify every durable segment, merge into one answer
  // block, publish a single-entry manifest, then drop the replaced files.
  // O(sealed answers) — amortized O(1) per answer under the geometric
  // growth the max_segment_files threshold induces. Failures leave the
  // old manifest (and files) fully valid.
  TCROWD_TRACE(kCheckpoint, kInfo, "durable compaction",
               manifest_.segments.size(), manifest_.sealed_answers);
  std::vector<Answer> merged;
  merged.reserve(manifest_.sealed_answers);
  fs::path dir(args_.directory);
  for (const ManifestSegment& seg : manifest_.segments) {
    std::string path = (dir / seg.file).string();
    std::string bytes;
    TCROWD_RETURN_IF_ERROR(ReadFileBytes(path, &bytes));
    if (Crc32(bytes.data(), bytes.size()) != seg.crc) {
      return Status::IoError(StrFormat(
          "segment %s: file checksum disagrees with manifest", path.c_str()));
    }
    TCROWD_RETURN_IF_ERROR(
        DecodeAnswerBlock(bytes.data(), bytes.size(), &merged));
  }

  std::vector<ManifestSegment> replaced;
  replaced.swap(manifest_.segments);
  Status st = WriteSegmentFile(merged.data(), merged.size());
  if (st.ok()) st = WriteManifest();
  if (!st.ok()) {
    manifest_.segments = std::move(replaced);  // old manifest still reigns
    return st;
  }
  for (const ManifestSegment& seg : replaced) {
    std::error_code rm_ec;
    fs::remove(dir / seg.file, rm_ec);  // best effort; orphans swept later
  }
  return Status::Ok();
}

Status SnapshotStore::PersistSealed(const Answer* answers, size_t n) {
  TCROWD_CHECK(opened_);
  if (n == 0) return Status::Ok();
  size_t segments_before = manifest_.segments.size();
  std::vector<uint64_t> retracted_before = manifest_.retracted_ids;
  Status st = WriteSegmentFile(answers, n);
  if (!st.ok()) {
    manifest_.segments.resize(segments_before);
    return st;
  }
  manifest_.sealed_answers += n;
  // Fold journal retractions whose target is now segment-durable into the
  // manifest's retraction table (sorted, deduplicated); any others stay
  // journal-resident until their answer seals.
  std::vector<uint64_t> still_journaled;
  for (uint64_t id : journal_retracted_) {
    if (id < manifest_.sealed_answers) {
      manifest_.retracted_ids.push_back(id);
    } else {
      still_journaled.push_back(id);
    }
  }
  std::sort(manifest_.retracted_ids.begin(), manifest_.retracted_ids.end());
  manifest_.retracted_ids.erase(std::unique(manifest_.retracted_ids.begin(),
                                            manifest_.retracted_ids.end()),
                                manifest_.retracted_ids.end());
  st = WriteManifest();
  if (!st.ok()) {
    // Roll the in-memory manifest back so a retry re-writes the slice.
    manifest_.segments.resize(segments_before);
    manifest_.sealed_answers -= n;
    manifest_.retracted_ids = std::move(retracted_before);
    return st;
  }
  // Only after the manifest durably lists the segment: anything the journal
  // held is covered now, so dropping it cannot lose answers. Not-yet-folded
  // retractions (if any) are re-journaled into the fresh file.
  std::string clean;
  for (uint64_t id : still_journaled) EncodeRetractionRecord(id, &clean);
  TCROWD_RETURN_IF_ERROR(PublishJournal(clean));
  journal_retracted_ = std::move(still_journaled);
  journaled_ = 0;
  if (args_.max_segment_files > 0 &&
      static_cast<int>(manifest_.segments.size()) > args_.max_segment_files) {
    TCROWD_RETURN_IF_ERROR(CompactSegments());
  }
  return Status::Ok();
}

Status SnapshotStore::JournalAppend(uint64_t base_id, const Answer* answers,
                                    size_t n) {
  TCROWD_CHECK(journal_ != nullptr);
  if (n == 0) return Status::Ok();
  TCROWD_TRACE(kCheckpoint, kDebug, "journal append", base_id, n);
  std::string bytes;
  EncodeJournalRecord(base_id, answers, n, &bytes);
  if (std::fwrite(bytes.data(), 1, bytes.size(), journal_) != bytes.size()) {
    return Status::IoError("short write to snapshot journal");
  }
  TCROWD_RETURN_IF_ERROR(SyncFile(journal_, "snapshot journal"));
  journaled_ += n;
  return Status::Ok();
}

Status SnapshotStore::JournalRetract(uint64_t log_id) {
  TCROWD_CHECK(journal_ != nullptr);
  std::string bytes;
  EncodeRetractionRecord(log_id, &bytes);
  if (std::fwrite(bytes.data(), 1, bytes.size(), journal_) != bytes.size()) {
    return Status::IoError("short write to snapshot journal");
  }
  TCROWD_RETURN_IF_ERROR(SyncFile(journal_, "snapshot journal"));
  journal_retracted_.push_back(log_id);
  return Status::Ok();
}

Status SnapshotStore::WipeDirectory(const std::string& directory) {
  std::error_code ec;
  if (!fs::exists(directory, ec)) return Status::Ok();
  for (const fs::directory_entry& entry : fs::directory_iterator(directory, ec)) {
    std::string name = entry.path().filename().string();
    bool owned = name == kManifestName || name == kManifestTmpName ||
                 name == kJournalName || name == kJournalTmpName ||
                 IsSegmentFileName(name);
    if (!owned) continue;
    std::error_code rm_ec;
    fs::remove(entry.path(), rm_ec);
    if (rm_ec) {
      return Status::IoError(StrFormat("cannot remove %s: %s",
                                       entry.path().string().c_str(),
                                       rm_ec.message().c_str()));
    }
  }
  if (ec) {
    return Status::IoError(StrFormat("cannot list %s: %s", directory.c_str(),
                                     ec.message().c_str()));
  }
  return Status::Ok();
}

}  // namespace tcrowd::service
