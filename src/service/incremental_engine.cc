#include "service/incremental_engine.h"

#include <algorithm>
#include <exception>
#include <utility>

#include "assignment/policies.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "inference/answer_segment.h"
#include "inference/catd.h"
#include "inference/crh.h"
#include "inference/dawid_skene.h"
#include "inference/glad.h"
#include "inference/gtm.h"
#include "inference/majority_voting.h"
#include "inference/median_inference.h"
#include "inference/zencrowd.h"
#include "platform/event_log.h"
#include "platform/trace.h"

namespace tcrowd::service {

namespace {

InferenceArgs Normalize(InferenceArgs args) {
  args.staleness_threshold = std::max(1, args.staleness_threshold);
  args.num_shards = std::max(1, args.num_shards);
  args.min_answers_for_fit = std::max(1, args.min_answers_for_fit);
  args.ingest_batch_size = std::max(1, args.ingest_batch_size);
  // The refresh EM shards its E/M steps across the engine's persistent
  // executor; num_threads records the effective shard count so a batch
  // TCrowdModel run with these options reproduces the refresh bit-for-bit.
  args.tcrowd_options.num_threads =
      std::max(args.tcrowd_options.num_threads, args.num_shards);
  return args;
}

/// Column mask the engine's store seals segments under: the model's mask
/// for the T-Crowd variants (so sealed segments agree with the fit), all
/// columns for baseline methods (they index the full log).
std::vector<bool> StoreActiveColumns(const Schema& schema,
                                     const InferenceArgs& args) {
  int cols = schema.num_columns();
  if (!IncrementalInferenceEngine::IsTCrowdMethod(args.method)) {
    return std::vector<bool>(cols, true);
  }
  if (args.method == "tc-onlycate") {
    return TCrowdModel::OnlyCategorical(schema, args.tcrowd_options)
        .ActiveColumns(cols);
  }
  if (args.method == "tc-onlycont") {
    return TCrowdModel::OnlyContinuous(schema, args.tcrowd_options)
        .ActiveColumns(cols);
  }
  return TCrowdModel(args.tcrowd_options).ActiveColumns(cols);
}

}  // namespace

IncrementalInferenceEngine::IncrementalInferenceEngine(const Schema& schema,
                                                       int num_rows,
                                                       InferenceArgs args,
                                                       ThreadPool* pool)
    : schema_(schema),
      num_rows_(num_rows),
      args_(Normalize(std::move(args))),
      pool_(pool),
      executor_(
          std::make_unique<EmExecutor>(args_.tcrowd_options.num_threads)),
      store_(schema, num_rows, StoreActiveColumns(schema, args_),
             args_.store),
      tcrowd_path_(IsTCrowdMethod(args_.method)) {
  TCROWD_CHECK(num_rows_ > 0);
  TCROWD_CHECK(schema_.num_columns() > 0);
  cell_live_.resize(static_cast<size_t>(num_rows_) * schema_.num_columns());
  if (args_.checkpoint.enabled()) RestoreFromCheckpoint();
}

void IncrementalInferenceEngine::DisableCheckpointing(const Status& error,
                                                      const char* during) {
  TCROWD_LOG(Warning) << "checkpointing disabled (" << during
                      << "): " << error.ToString()
                      << " — serving continues from memory only";
  if (checkpoint_status_.ok()) checkpoint_status_ = error;
  snapshot_.reset();
  unsealed_log_.clear();
  unsealed_log_.shrink_to_fit();
}

void IncrementalInferenceEngine::RestoreFromCheckpoint() {
  // Constructor-only: no other thread can touch the engine yet, so no lock.
  snapshot_ = std::make_unique<SnapshotStore>(args_.checkpoint);
  SnapshotStore::RecoveredLog log;
  Status st = snapshot_->Open(schema_, num_rows_, &log);
  if (!st.ok()) {
    // Never write into a directory we could not make sense of: restoring
    // nothing AND persisting over the old state would destroy the evidence.
    DisableCheckpointing(st, "restore");
    return;
  }
  if (log.journal_truncated) {
    TCROWD_LOG(Warning) << "snapshot journal had a torn tail; recovered the "
                        << "clean prefix (" << log.answers.size()
                        << " answers)";
  }
  // Semantic validation, mirroring what AcceptAnswerLocked enforced before
  // any of these answers were ever journaled: a checkpoint can be
  // CRC-clean yet hold out-of-range cells or labels (hand-edited file,
  // buggy writer). Such data must refuse with a clean Status, not abort a
  // store CHECK or index a baseline method out of bounds later.
  for (size_t k = 0; k < log.answers.size(); ++k) {
    const Answer& a = log.answers[k];
    bool cell_ok = a.cell.row >= 0 && a.cell.row < num_rows_ &&
                   a.cell.col >= 0 && a.cell.col < schema_.num_columns();
    bool value_ok = false;
    if (cell_ok) {
      const ColumnSpec& col = schema_.column(a.cell.col);
      value_ok =
          a.value.valid() &&
          ((col.type == ColumnType::kCategorical &&
            a.value.is_categorical() && a.value.label() >= 0 &&
            a.value.label() < static_cast<int>(col.labels.size())) ||
           (col.type == ColumnType::kContinuous && a.value.is_continuous()));
    }
    if (!cell_ok || !value_ok) {
      DisableCheckpointing(
          Status::FailedPrecondition(StrFormat(
              "checkpoint %s: answer %zu does not fit the serving schema "
              "(cell %d,%d %s)",
              args_.checkpoint.directory.c_str(), k, a.cell.row, a.cell.col,
              a.value.ToString().c_str())),
          "restore validation");
      return;
    }
  }
  // Replay the durable log into the in-memory store, re-sealing at each
  // durable segment boundary (compaction thresholds may merge them — that
  // only changes in-memory layout, never the chronological log). Journal
  // answers stay in the tail, exactly as they were before the crash.
  // Durably retracted answers are filtered out while replaying: the store
  // holds live answers only, and a force-compacting Finalize() then sees
  // the exact chronological live sequence the uninterrupted run would —
  // which is what keeps restore-then-Finalize bit-identical even when the
  // crash fell between a retraction and the seal that folds it.
  const std::vector<uint64_t>& dead = log.retracted_ids;  // sorted, deduped
  auto is_dead = [&dead](size_t id) {
    return std::binary_search(dead.begin(), dead.end(),
                              static_cast<uint64_t>(id));
  };
  size_t offset = 0;
  std::vector<Answer> live_buf;
  for (size_t sz : log.segment_sizes) {
    live_buf.clear();
    for (size_t k = offset; k < offset + sz; ++k) {
      if (!is_dead(k)) live_buf.push_back(log.answers[k]);
    }
    store_.AppendBatch(live_buf.data(), live_buf.size());
    store_.SealAndSnapshot();
    offset += sz;
  }
  for (size_t k = offset; k < log.answers.size(); ++k) {
    if (!is_dead(k)) store_.Append(log.answers[k]);
  }
  for (size_t k = 0; k < log.answers.size(); ++k) {
    if (is_dead(k)) continue;
    const Answer& a = log.answers[k];
    cell_live_[static_cast<size_t>(a.cell.row) * schema_.num_columns() +
               a.cell.col]
        .push_back(CellLogEntry{k, a.worker});
  }
  // Log-space bookkeeping: log ids keep counting from the durable total;
  // the unfiltered journal tail is what the next persist seals.
  log_size_ = log.answers.size();
  applied_dead_.assign(dead.begin(), dead.end());
  unsealed_log_.assign(log.answers.begin() + log.sealed_answers,
                       log.answers.end());
  restored_ = log.answers.size() - dead.size();
  restored_retractions_ = dead.size();
}

IncrementalInferenceEngine::~IncrementalInferenceEngine() {
  std::unique_lock<std::mutex> lock(mu_);
  shutdown_ = true;
  refresh_done_.wait(lock, [this] { return !refresh_in_flight_; });
}

bool IncrementalInferenceEngine::IsTCrowdMethod(const std::string& method) {
  return method == "tcrowd" || method == "tc-onlycate" ||
         method == "tc-onlycont";
}

TCrowdModel IncrementalInferenceEngine::MakeTCrowdModel() const {
  if (args_.method == "tc-onlycate") {
    return TCrowdModel::OnlyCategorical(schema_, args_.tcrowd_options);
  }
  if (args_.method == "tc-onlycont") {
    return TCrowdModel::OnlyContinuous(schema_, args_.tcrowd_options);
  }
  return TCrowdModel(args_.tcrowd_options);
}

std::unique_ptr<TruthInference> IncrementalInferenceEngine::MakeBatchMethod()
    const {
  const std::string& m = args_.method;
  if (m == "mv") return std::make_unique<MajorityVoting>();
  if (m == "median") return std::make_unique<MedianInference>();
  if (m == "ds") return std::make_unique<DawidSkene>();
  if (m == "zencrowd") return std::make_unique<ZenCrowd>();
  if (m == "glad") return std::make_unique<Glad>();
  if (m == "gtm") return std::make_unique<Gtm>();
  if (m == "crh") return std::make_unique<Crh>();
  if (m == "catd") return std::make_unique<Catd>();
  return std::make_unique<TCrowdModel>(MakeTCrowdModel());
}

void IncrementalInferenceEngine::DrainIngestLocked(bool apply_updates) {
  std::vector<Answer> batch;
  {
    std::lock_guard<std::mutex> lock(ingest_mu_);
    batch.swap(ingest_);
  }
  if (batch.empty()) return;
  // One pass: append to the store's tail segment and apply the incremental
  // posterior updates, under a single acquisition of the engine mutex.
  // `apply_updates` is false only when the caller is about to replace
  // state_ and replay the tail anyway (the refresh install path) — applying
  // here too would pay every Bayes update twice.
  // Journal records are tagged with LOG ids, not store ids: retractions
  // may have renumbered the store, but the durable log is append-only.
  size_t base = log_size_;
  for (const Answer& answer : batch) {
    store_.Append(answer);
    cell_live_[static_cast<size_t>(answer.cell.row) * schema_.num_columns() +
               answer.cell.col]
        .push_back(CellLogEntry{log_size_, answer.worker});
    ++log_size_;
    ++answers_since_refresh_;
    if (apply_updates && fitted_ && tcrowd_path_) {
      ApplyIncrementalAnswer(answer, &state_);
    }
  }
  absorbed_since_refresh_.store(answers_since_refresh_,
                                std::memory_order_relaxed);
  if (snapshot_ != nullptr) {
    unsealed_log_.insert(unsealed_log_.end(), batch.begin(), batch.end());
    // Durability boundary: once the journal append returns, everything
    // absorbed so far survives a crash. One framed record per drained
    // batch — the same amortization the ingest queue buys the lock.
    Status st = snapshot_->JournalAppend(base, batch.data(), batch.size());
    if (!st.ok()) DisableCheckpointing(st, "journal append");
  }
}

bool IncrementalInferenceEngine::StaleLocked() const {
  return answers_since_refresh_ >= args_.staleness_threshold ||
         (!fitted_ && static_cast<int>(store_.size()) >=
                          args_.min_answers_for_fit);
}

void IncrementalInferenceEngine::ScheduleRefreshLocked(bool* run_inline) {
  if (shutdown_ ||
      static_cast<int>(store_.size()) < args_.min_answers_for_fit) {
    return;
  }
  if (refresh_in_flight_) {
    // Coalesce: the running refresh will loop exactly once more.
    refresh_pending_ = true;
    return;
  }
  refresh_in_flight_ = true;
  answers_since_refresh_ = 0;
  absorbed_since_refresh_.store(0, std::memory_order_relaxed);
  if (pool_ != nullptr && args_.async_refresh) {
    if (!pool_->Submit([this] { RunRefresh(); })) *run_inline = true;
  } else {
    *run_inline = true;
  }
}

void IncrementalInferenceEngine::DrainAndMaybeRefresh() {
  bool run_inline = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    DrainIngestLocked();
    if (StaleLocked() && !refresh_in_flight_) {
      ScheduleRefreshLocked(&run_inline);
    }
  }
  if (run_inline) RunRefresh();
}

void IncrementalInferenceEngine::SubmitAnswer(const Answer& answer) {
  SubmitAnswerBatch(&answer, 1);
}

void IncrementalInferenceEngine::SubmitAnswerBatch(const Answer* answers,
                                                   size_t n) {
  if (n == 0) return;
  size_t queued;
  {
    std::lock_guard<std::mutex> lock(ingest_mu_);
    ingest_.reserve(ingest_.size() + n);
    for (size_t k = 0; k < n; ++k) {
      const Answer& a = answers[k];
      TCROWD_CHECK(a.cell.row >= 0 && a.cell.row < num_rows_);
      TCROWD_CHECK(a.cell.col >= 0 && a.cell.col < schema_.num_columns());
      ingest_.push_back(a);
    }
    queued = ingest_.size();
  }
  size_t total =
      total_queued_.fetch_add(n, std::memory_order_relaxed) + n;
  // Lock-free hints only: the authoritative staleness decision is re-made
  // under the engine mutex inside the drain. Draining at least as often as
  // the historical per-answer path would have scheduled keeps the refresh
  // cadence identical.
  bool drain =
      queued >= static_cast<size_t>(args_.ingest_batch_size) ||
      absorbed_since_refresh_.load(std::memory_order_relaxed) +
              static_cast<int>(queued) >=
          args_.staleness_threshold ||
      (!fitted_flag_.load(std::memory_order_relaxed) &&
       total >= static_cast<size_t>(args_.min_answers_for_fit));
  if (drain) DrainAndMaybeRefresh();
}

void IncrementalInferenceEngine::RequestRefresh() {
  bool run_inline = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    DrainIngestLocked();
    ScheduleRefreshLocked(&run_inline);
  }
  if (run_inline) RunRefresh();
}

void IncrementalInferenceEngine::RunRefresh() {
  while (true) {
    AnswerMatrixSnapshot snapshot;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutdown_) {
        refresh_in_flight_ = false;
        refresh_done_.notify_all();
        return;
      }
      DrainIngestLocked();
      // Snapshot-free refresh: seal the tail (O(new answers)) and take
      // segment POINTERS — no answer is copied, and every previously
      // sealed segment's runs / SoA views / worker index are reused.
      snapshot = store_.SealAndSnapshot();
      snapshot_size_ = snapshot.num_answers();
      AbsorbAppliedTombstonesLocked();
      // Checkpoint-on-seal: the newly sealed slice goes to disk exactly
      // once, while it is still O(answers since the last refresh).
      PersistSealedLocked();
      TCROWD_TRACE(kSeal, kInfo, "refresh seal", snapshot_size_,
                   static_cast<uint64_t>(refresh_count_));
      if (args_.recorder != nullptr) {
        args_.recorder->RecordSeal(snapshot_size_);
      }
    }
    TCROWD_TRACE(kEngine, kInfo, "refresh fit start", snapshot_size_,
                 static_cast<uint64_t>(tcrowd_path_ ? 1 : 0));

    // The expensive part runs without the lock: submits keep flowing while
    // the EM re-converges over the immutable segments, on the persistent
    // executor.
    TCrowdState fresh_state;
    InferenceResult fresh_result;
    bool fit_ok = true;
    try {
      if (tcrowd_path_) {
        fresh_state =
            MakeTCrowdModel().Fit(schema_, snapshot, executor_.get());
      } else {
        // Baseline methods consume plain AnswerSets; materializing from the
        // immutable snapshot needs no lock. O(total), but confined to the
        // periodic-batch-refit path by design.
        AnswerSet snap_set = MaterializeAnswerSet(snapshot);
        fresh_result = MakeBatchMethod()->Infer(schema_, snap_set);
      }
    } catch (const std::exception& e) {
      // A failed refresh must never wedge the engine: keep serving the last
      // installed state and let a later submit schedule the next attempt.
      TCROWD_LOG(Warning) << "inference refresh failed: " << e.what();
      fit_ok = false;
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      // On a successful install the queued answers are replayed onto the
      // fresh state below — skip the redundant apply to the outgoing one.
      DrainIngestLocked(/*apply_updates=*/!fit_ok);
      if (fit_ok) {
        if (tcrowd_path_) {
          state_ = std::move(fresh_state);
          // Answers that arrived during the fit are replayed incrementally
          // so the installed state reflects every submitted answer.
          for (const Answer& answer :
               store_.CopyAnswersSince(snapshot_size_)) {
            ApplyIncrementalAnswer(answer, &state_);
          }
        } else {
          baseline_result_ = std::move(fresh_result);
        }
        fitted_ = true;
        fitted_flag_.store(true, std::memory_order_relaxed);
        ++refresh_count_;
        TCROWD_TRACE(kEngine, kInfo, "refresh installed",
                     static_cast<uint64_t>(refresh_count_), store_.size());
      }
      if (refresh_pending_ && !shutdown_) {
        // Coalesced requests: run one more pass with a fresh snapshot;
        // refresh_in_flight_ stays set so waiters keep waiting.
        refresh_pending_ = false;
        answers_since_refresh_ = 0;
        absorbed_since_refresh_.store(0, std::memory_order_relaxed);
        continue;
      }
      refresh_in_flight_ = false;
      // Notify under the lock: a waiter (incl. the destructor) may
      // otherwise finish and destroy the condition variable before the
      // notify lands.
      refresh_done_.notify_all();
      return;
    }
  }
}

void IncrementalInferenceEngine::PersistSealedLocked() {
  if (snapshot_ == nullptr) return;
  if (unsealed_log_.empty()) return;
  // The durable log is append-only in log-id space: the newly sealed slice
  // is the unfiltered answers drained since the last persist, NOT a copy
  // from the store — a seal may have scrubbed retracted answers out of the
  // in-memory numbering, but on disk they stay in place and the retraction
  // records (folded into the manifest by this persist) mark them dead.
  Status st =
      snapshot_->PersistSealed(unsealed_log_.data(), unsealed_log_.size());
  if (!st.ok()) {
    DisableCheckpointing(st, "segment persist");
    return;
  }
  unsealed_log_.clear();
}

void IncrementalInferenceEngine::AbsorbAppliedTombstonesLocked() {
  if (!pending_dead_.empty()) {
    std::sort(pending_dead_.begin(), pending_dead_.end());
    size_t mid = applied_dead_.size();
    applied_dead_.insert(applied_dead_.end(), pending_dead_.begin(),
                         pending_dead_.end());
    std::inplace_merge(applied_dead_.begin(), applied_dead_.begin() + mid,
                       applied_dead_.end());
    pending_dead_.clear();
  }
  // The store now holds exactly the live log (tail included): every
  // retraction ever accepted has been renumbered away by the seal.
  TCROWD_CHECK(store_.size() ==
               static_cast<size_t>(log_size_) - applied_dead_.size());
}

size_t IncrementalInferenceEngine::StoreIdForLocked(uint64_t log_id) const {
  size_t applied_before = static_cast<size_t>(
      std::lower_bound(applied_dead_.begin(), applied_dead_.end(), log_id) -
      applied_dead_.begin());
  return static_cast<size_t>(log_id) - applied_before;
}

Status IncrementalInferenceEngine::RetractAnswer(WorkerId worker,
                                                 CellRef cell) {
  bool run_inline = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (cell.row < 0 || cell.row >= num_rows_ || cell.col < 0 ||
        cell.col >= schema_.num_columns()) {
      return Status::InvalidArgument("retract: cell out of range");
    }
    DrainIngestLocked();  // the target answer may still be queued
    auto& entries =
        cell_live_[static_cast<size_t>(cell.row) * schema_.num_columns() +
                   cell.col];
    size_t pos = entries.size();
    for (size_t k = entries.size(); k-- > 0;) {
      if (entries[k].worker == worker) {
        pos = k;
        break;
      }
    }
    if (pos == entries.size()) {
      return Status::NotFound(
          "retract: worker has no live answer on this cell");
    }
    uint64_t log_id = entries[pos].log_id;
    entries.erase(entries.begin() + pos);
    store_.Tombstone(StoreIdForLocked(log_id));
    pending_dead_.push_back(log_id);
    ++retractions_total_;
    // A retraction is as staleness-relevant as an answer: the incremental
    // posterior still carries the dead evidence until the next refresh
    // re-converges over the live log.
    ++answers_since_refresh_;
    absorbed_since_refresh_.store(answers_since_refresh_,
                                  std::memory_order_relaxed);
    if (snapshot_ != nullptr) {
      Status st = snapshot_->JournalRetract(log_id);
      if (!st.ok()) DisableCheckpointing(st, "journal retract");
    }
    if (StaleLocked() && !refresh_in_flight_) {
      ScheduleRefreshLocked(&run_inline);
    }
  }
  if (run_inline) RunRefresh();
  return Status::Ok();
}

size_t IncrementalInferenceEngine::num_retractions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retractions_total_;
}

Status IncrementalInferenceEngine::checkpoint_status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return checkpoint_status_;
}

AnswerSet IncrementalInferenceEngine::SnapshotAnswers() {
  std::lock_guard<std::mutex> lock(mu_);
  DrainIngestLocked();
  return store_.MaterializeAnswerSet();
}

size_t IncrementalInferenceEngine::num_answers() {
  std::lock_guard<std::mutex> lock(mu_);
  DrainIngestLocked();
  return store_.size();
}

SegmentedAnswerStore::Stats IncrementalInferenceEngine::store_stats() {
  std::lock_guard<std::mutex> lock(mu_);
  DrainIngestLocked();
  return store_.stats();
}

Value IncrementalInferenceEngine::Estimate(CellRef cell) {
  std::lock_guard<std::mutex> lock(mu_);
  DrainIngestLocked();
  if (!fitted_) return Value();
  if (store_.CellAnswerCount(cell.row, cell.col) == 0) return Value();
  if (tcrowd_path_) {
    if (!state_.column_active[cell.col]) return Value();
    return state_.posterior(cell.row, cell.col).PointEstimate();
  }
  return baseline_result_.estimated_truth.at(cell);
}

double IncrementalInferenceEngine::CellEntropy(CellRef cell) {
  std::lock_guard<std::mutex> lock(mu_);
  DrainIngestLocked();
  if (!fitted_ || !tcrowd_path_) return 0.0;
  if (!state_.column_active[cell.col]) return 0.0;
  return state_.posterior(cell.row, cell.col).Entropy();
}

Table IncrementalInferenceEngine::EstimatedTruth() {
  std::lock_guard<std::mutex> lock(mu_);
  DrainIngestLocked();
  if (!fitted_) return Table(schema_, num_rows_);
  if (tcrowd_path_) return TCrowdModel::StateToResult(state_).estimated_truth;
  return baseline_result_.estimated_truth;
}

void IncrementalInferenceEngine::WaitForRefresh() {
  std::unique_lock<std::mutex> lock(mu_);
  refresh_done_.wait(lock, [this] { return !refresh_in_flight_; });
}

InferenceResult IncrementalInferenceEngine::Finalize() {
  AnswerMatrixSnapshot snapshot;
  {
    // Drain refreshes, then reserve the executor (refresh_in_flight_ keeps
    // concurrent submits from scheduling a fit onto it mid-finalize).
    std::unique_lock<std::mutex> lock(mu_);
    DrainIngestLocked();
    refresh_done_.wait(lock, [this] { return !refresh_in_flight_; });
    refresh_in_flight_ = true;
    DrainIngestLocked();
    // Full compaction: fresh standardization epoch + worker registry over
    // everything collected — the snapshot is then indistinguishable from
    // the one the batch model builds, which is what makes the finalized
    // truths bit-identical to a batch fit on the same answers.
    snapshot = store_.SealAndSnapshot(/*force_compact=*/true);
    AbsorbAppliedTombstonesLocked();
    PersistSealedLocked();
    TCROWD_TRACE(kSeal, kInfo, "finalize force-compact seal",
                 snapshot.num_answers(), static_cast<uint64_t>(0));
    if (args_.recorder != nullptr) {
      args_.recorder->RecordSeal(snapshot.num_answers());
    }
  }
  TCROWD_TRACE(kEngine, kInfo, "finalize fit start", snapshot.num_answers(),
               static_cast<uint64_t>(refresh_count_));
  InferenceResult result;
  try {
    if (tcrowd_path_) {
      // Same hot loop, same executor, full batch convergence: matches a
      // batch TCrowdModel run with args().tcrowd_options bit-for-bit.
      result = TCrowdModel::StateToResult(
          MakeTCrowdModel().Fit(schema_, snapshot, executor_.get()));
    } else {
      result = MakeBatchMethod()->Infer(schema_,
                                        MaterializeAnswerSet(snapshot));
    }
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    refresh_in_flight_ = false;
    refresh_pending_ = false;
    refresh_done_.notify_all();
    throw;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    refresh_in_flight_ = false;
    // Requests coalesced behind the final fit are moot: the caller has the
    // fully converged result already.
    refresh_pending_ = false;
    refresh_done_.notify_all();
  }
  return result;
}

int IncrementalInferenceEngine::refresh_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return refresh_count_;
}

int IncrementalInferenceEngine::answers_since_refresh() const {
  std::lock_guard<std::mutex> lock(mu_);
  return answers_since_refresh_;
}

bool IncrementalInferenceEngine::fitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fitted_;
}

}  // namespace tcrowd::service
