#include "service/incremental_engine.h"

#include <algorithm>
#include <exception>
#include <utility>

#include "assignment/policies.h"
#include "common/logging.h"
#include "inference/catd.h"
#include "inference/crh.h"
#include "inference/dawid_skene.h"
#include "inference/glad.h"
#include "inference/gtm.h"
#include "inference/majority_voting.h"
#include "inference/median_inference.h"
#include "inference/zencrowd.h"

namespace tcrowd::service {

namespace {

InferenceArgs Normalize(InferenceArgs args) {
  args.staleness_threshold = std::max(1, args.staleness_threshold);
  args.num_shards = std::max(1, args.num_shards);
  args.min_answers_for_fit = std::max(1, args.min_answers_for_fit);
  // The refresh EM shards its E/M steps across the engine's persistent
  // executor; num_threads records the effective shard count so a batch
  // TCrowdModel run with these options reproduces the refresh bit-for-bit.
  args.tcrowd_options.num_threads =
      std::max(args.tcrowd_options.num_threads, args.num_shards);
  return args;
}

}  // namespace

IncrementalInferenceEngine::IncrementalInferenceEngine(const Schema& schema,
                                                       int num_rows,
                                                       InferenceArgs args,
                                                       ThreadPool* pool)
    : schema_(schema),
      num_rows_(num_rows),
      args_(Normalize(std::move(args))),
      pool_(pool),
      executor_(
          std::make_unique<EmExecutor>(args_.tcrowd_options.num_threads)),
      answers_(num_rows, schema.num_columns()),
      tcrowd_path_(IsTCrowdMethod(args_.method)) {
  TCROWD_CHECK(num_rows_ > 0);
  TCROWD_CHECK(schema_.num_columns() > 0);
}

IncrementalInferenceEngine::~IncrementalInferenceEngine() {
  std::unique_lock<std::mutex> lock(mu_);
  shutdown_ = true;
  refresh_done_.wait(lock, [this] { return !refresh_in_flight_; });
}

bool IncrementalInferenceEngine::IsTCrowdMethod(const std::string& method) {
  return method == "tcrowd" || method == "tc-onlycate" ||
         method == "tc-onlycont";
}

TCrowdModel IncrementalInferenceEngine::MakeTCrowdModel() const {
  if (args_.method == "tc-onlycate") {
    return TCrowdModel::OnlyCategorical(schema_, args_.tcrowd_options);
  }
  if (args_.method == "tc-onlycont") {
    return TCrowdModel::OnlyContinuous(schema_, args_.tcrowd_options);
  }
  return TCrowdModel(args_.tcrowd_options);
}

std::unique_ptr<TruthInference> IncrementalInferenceEngine::MakeBatchMethod()
    const {
  const std::string& m = args_.method;
  if (m == "mv") return std::make_unique<MajorityVoting>();
  if (m == "median") return std::make_unique<MedianInference>();
  if (m == "ds") return std::make_unique<DawidSkene>();
  if (m == "zencrowd") return std::make_unique<ZenCrowd>();
  if (m == "glad") return std::make_unique<Glad>();
  if (m == "gtm") return std::make_unique<Gtm>();
  if (m == "crh") return std::make_unique<Crh>();
  if (m == "catd") return std::make_unique<Catd>();
  return std::make_unique<TCrowdModel>(MakeTCrowdModel());
}

void IncrementalInferenceEngine::ScheduleRefreshLocked(bool* run_inline) {
  if (shutdown_ ||
      static_cast<int>(answers_.size()) < args_.min_answers_for_fit) {
    return;
  }
  if (refresh_in_flight_) {
    // Coalesce: the running refresh will loop exactly once more.
    refresh_pending_ = true;
    return;
  }
  refresh_in_flight_ = true;
  answers_since_refresh_ = 0;
  if (pool_ != nullptr && args_.async_refresh) {
    if (!pool_->Submit([this] { RunRefresh(); })) *run_inline = true;
  } else {
    *run_inline = true;
  }
}

void IncrementalInferenceEngine::SubmitAnswer(const Answer& answer) {
  bool run_inline = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    TCROWD_CHECK(answer.cell.row >= 0 && answer.cell.row < num_rows_);
    TCROWD_CHECK(answer.cell.col >= 0 &&
                 answer.cell.col < schema_.num_columns());
    answers_.Add(answer);
    ++answers_since_refresh_;
    if (fitted_ && tcrowd_path_) {
      ApplyIncrementalAnswer(answer, &state_);
    }
    bool stale = answers_since_refresh_ >= args_.staleness_threshold ||
                 (!fitted_ && static_cast<int>(answers_.size()) >=
                                  args_.min_answers_for_fit);
    if (stale && !refresh_in_flight_) {
      ScheduleRefreshLocked(&run_inline);
    }
  }
  if (run_inline) RunRefresh();
}

void IncrementalInferenceEngine::RequestRefresh() {
  bool run_inline = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ScheduleRefreshLocked(&run_inline);
  }
  if (run_inline) RunRefresh();
}

void IncrementalInferenceEngine::RunRefresh() {
  while (true) {
    AnswerSet snapshot;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutdown_) {
        refresh_in_flight_ = false;
        refresh_done_.notify_all();
        return;
      }
      snapshot = answers_;
      snapshot_size_ = answers_.size();
    }

    // The expensive part runs without the lock: submits keep flowing while
    // the EM re-converges on the snapshot, on the persistent executor.
    TCrowdState fresh_state;
    InferenceResult fresh_result;
    bool fit_ok = true;
    try {
      if (tcrowd_path_) {
        TCrowdModel model = MakeTCrowdModel();
        fresh_state = model.Fit(schema_, snapshot, executor_.get());
      } else {
        fresh_result = MakeBatchMethod()->Infer(schema_, snapshot);
      }
    } catch (const std::exception& e) {
      // A failed refresh must never wedge the engine: keep serving the last
      // installed state and let a later submit schedule the next attempt.
      TCROWD_LOG(Warning) << "inference refresh failed: " << e.what();
      fit_ok = false;
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      if (fit_ok) {
        if (tcrowd_path_) {
          state_ = std::move(fresh_state);
          // Answers that arrived during the fit are replayed incrementally
          // so the installed state reflects every submitted answer.
          for (size_t id = snapshot_size_; id < answers_.size(); ++id) {
            ApplyIncrementalAnswer(answers_.answer(static_cast<int>(id)),
                                   &state_);
          }
        } else {
          baseline_result_ = std::move(fresh_result);
        }
        fitted_ = true;
        ++refresh_count_;
      }
      if (refresh_pending_ && !shutdown_) {
        // Coalesced requests: run one more pass with a fresh snapshot;
        // refresh_in_flight_ stays set so waiters keep waiting.
        refresh_pending_ = false;
        answers_since_refresh_ = 0;
        continue;
      }
      refresh_in_flight_ = false;
      // Notify under the lock: a waiter (incl. the destructor) may
      // otherwise finish and destroy the condition variable before the
      // notify lands.
      refresh_done_.notify_all();
      return;
    }
  }
}

AnswerSet IncrementalInferenceEngine::SnapshotAnswers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return answers_;
}

size_t IncrementalInferenceEngine::num_answers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return answers_.size();
}

Value IncrementalInferenceEngine::Estimate(CellRef cell) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!fitted_) return Value();
  if (answers_.CellAnswerCount(cell.row, cell.col) == 0) return Value();
  if (tcrowd_path_) {
    if (!state_.column_active[cell.col]) return Value();
    return state_.posterior(cell.row, cell.col).PointEstimate();
  }
  return baseline_result_.estimated_truth.at(cell);
}

double IncrementalInferenceEngine::CellEntropy(CellRef cell) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!fitted_ || !tcrowd_path_) return 0.0;
  if (!state_.column_active[cell.col]) return 0.0;
  return state_.posterior(cell.row, cell.col).Entropy();
}

Table IncrementalInferenceEngine::EstimatedTruth() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!fitted_) return Table(schema_, num_rows_);
  if (tcrowd_path_) return TCrowdModel::StateToResult(state_).estimated_truth;
  return baseline_result_.estimated_truth;
}

void IncrementalInferenceEngine::WaitForRefresh() {
  std::unique_lock<std::mutex> lock(mu_);
  refresh_done_.wait(lock, [this] { return !refresh_in_flight_; });
}

InferenceResult IncrementalInferenceEngine::Finalize() {
  AnswerSet snapshot;
  {
    // Drain refreshes, then reserve the executor (refresh_in_flight_ keeps
    // concurrent submits from scheduling a fit onto it mid-finalize).
    std::unique_lock<std::mutex> lock(mu_);
    refresh_done_.wait(lock, [this] { return !refresh_in_flight_; });
    refresh_in_flight_ = true;
    snapshot = answers_;
  }
  InferenceResult result;
  try {
    if (tcrowd_path_) {
      // Same hot loop, same executor, full batch convergence: matches a
      // batch TCrowdModel run with args().tcrowd_options bit-for-bit.
      result = TCrowdModel::StateToResult(
          MakeTCrowdModel().Fit(schema_, snapshot, executor_.get()));
    } else {
      result = MakeBatchMethod()->Infer(schema_, snapshot);
    }
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    refresh_in_flight_ = false;
    refresh_pending_ = false;
    refresh_done_.notify_all();
    throw;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    refresh_in_flight_ = false;
    // Requests coalesced behind the final fit are moot: the caller has the
    // fully converged result already.
    refresh_pending_ = false;
    refresh_done_.notify_all();
  }
  return result;
}

int IncrementalInferenceEngine::refresh_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return refresh_count_;
}

int IncrementalInferenceEngine::answers_since_refresh() const {
  std::lock_guard<std::mutex> lock(mu_);
  return answers_since_refresh_;
}

bool IncrementalInferenceEngine::fitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fitted_;
}

}  // namespace tcrowd::service
