#include "data/csv.h"

#include <fstream>
#include <sstream>

namespace tcrowd::csv {

StatusOr<std::vector<std::vector<std::string>>> Parse(
    const std::string& content) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
  };

  for (size_t i = 0; i < content.size(); ++i) {
    char c = content[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < content.size() && content[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field.empty()) {
          return Status::InvalidArgument(
              "quote in the middle of an unquoted CSV field");
        }
        in_quotes = true;
        field_started = true;
        break;
      case ',':
        end_field();
        break;
      case '\r':
        // Swallow; the '\n' that follows (if any) terminates the row.
        break;
      case '\n':
        end_row();
        break;
      default:
        field.push_back(c);
        field_started = true;
        break;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted CSV field");
  }
  // Trailing record without final newline.
  if (field_started || !field.empty() || !row.empty()) {
    end_row();
  }
  return rows;
}

namespace {
bool NeedsQuoting(const std::string& s) {
  return s.find_first_of(",\"\n\r") != std::string::npos;
}
}  // namespace

std::string Serialize(const std::vector<std::vector<std::string>>& rows) {
  std::string out;
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(',');
      if (NeedsQuoting(row[i])) {
        out.push_back('"');
        for (char c : row[i]) {
          if (c == '"') out.push_back('"');
          out.push_back(c);
        }
        out.push_back('"');
      } else {
        out += row[i];
      }
    }
    out.push_back('\n');
  }
  return out;
}

StatusOr<std::vector<std::vector<std::string>>> ReadFile(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return Parse(buffer.str());
}

Status WriteFile(const std::string& path,
                 const std::vector<std::vector<std::string>>& rows) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open for writing: " + path);
  }
  out << Serialize(rows);
  if (!out) {
    return Status::IoError("write failed: " + path);
  }
  return Status::Ok();
}

}  // namespace tcrowd::csv
