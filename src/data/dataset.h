#ifndef TCROWD_DATA_DATASET_H_
#define TCROWD_DATA_DATASET_H_

#include <string>

#include "common/status.h"
#include "data/answer.h"
#include "data/schema.h"
#include "data/table.h"

namespace tcrowd {

/// A complete crowdsourcing dataset: schema, (optionally partial) ground
/// truth table, and the collected worker answers.
struct Dataset {
  std::string name;
  Schema schema;
  Table truth;
  AnswerSet answers;

  int num_rows() const { return truth.num_rows(); }
  int num_cols() const { return schema.num_columns(); }
};

/// Persists a dataset as three CSV files in `dir`:
///   schema.csv  - name,type,labels-or-range per column
///   truth.csv   - one row per entity; labels by name, numbers as decimals
///   answers.csv - worker,row,column,value
/// The directory is created if absent.
Status SaveDataset(const Dataset& dataset, const std::string& dir);

/// Loads a dataset previously written by SaveDataset.
StatusOr<Dataset> LoadDataset(const std::string& dir);

}  // namespace tcrowd

#endif  // TCROWD_DATA_DATASET_H_
