#ifndef TCROWD_DATA_ANSWER_H_
#define TCROWD_DATA_ANSWER_H_

#include <cstdint>
#include <vector>

#include "data/table.h"
#include "data/value.h"

namespace tcrowd {

using WorkerId = int32_t;

/// One worker answer a^u_ij (paper Definition 2).
struct Answer {
  WorkerId worker = -1;
  CellRef cell;
  Value value;
};

/// The growing set A of all collected answers, with the index structures
/// every inference/assignment algorithm needs:
///   - answers per cell (for truth posteriors),
///   - answers per worker (for worker-quality estimation),
///   - answers per (worker, row) (for the structure-aware policy),
///   - has-answered tests (to avoid assigning the same cell twice).
class AnswerSet {
 public:
  AnswerSet() = default;
  /// Table dimensions fix the index layout.
  AnswerSet(int num_rows, int num_cols);

  int num_rows() const { return num_rows_; }
  int num_cols() const { return num_cols_; }

  /// Appends an answer and updates all indexes. Returns the answer's id.
  /// Worker ids may be sparse/arbitrary non-negative integers.
  int Add(const Answer& answer);
  int Add(WorkerId worker, CellRef cell, const Value& value) {
    return Add(Answer{worker, cell, value});
  }

  size_t size() const { return answers_.size(); }
  bool empty() const { return answers_.empty(); }
  const Answer& answer(int id) const { return answers_[id]; }
  const std::vector<Answer>& answers() const { return answers_; }

  /// Ids of answers on cell (row, col).
  const std::vector<int>& AnswersForCell(int row, int col) const;
  const std::vector<int>& AnswersForCell(CellRef c) const {
    return AnswersForCell(c.row, c.col);
  }

  /// Ids of answers given by `worker` (empty vector if unknown worker).
  const std::vector<int>& AnswersForWorker(WorkerId worker) const;

  /// Ids of answers given by `worker` within row `row`.
  std::vector<int> AnswersForWorkerInRow(WorkerId worker, int row) const;

  /// True if `worker` has already answered the cell.
  bool HasAnswered(WorkerId worker, CellRef cell) const;

  /// All distinct workers that have answered at least once, ascending.
  std::vector<WorkerId> Workers() const;

  /// Number of answers collected for the given cell.
  int CellAnswerCount(int row, int col) const {
    return static_cast<int>(AnswersForCell(row, col).size());
  }

  /// Average number of answers per cell over the whole table.
  double MeanAnswersPerCell() const;

  /// Replaces the value of answer `id` (used by noise injection).
  void ReplaceValue(int id, const Value& value);

  /// Removes the newest answer `worker` gave on `cell` and renumbers the
  /// ids above it (the retraction path of CrowdService). O(total) — the
  /// indexes are rebuilt so every consumer sees a clean, gap-free set.
  /// Returns false when the worker has no answer on the cell.
  bool RemoveLast(WorkerId worker, CellRef cell);

 private:
  int num_rows_ = 0;
  int num_cols_ = 0;
  std::vector<Answer> answers_;
  std::vector<std::vector<int>> by_cell_;              // row-major cell index
  std::vector<std::vector<int>> by_worker_;            // worker -> answer ids
  static const std::vector<int> kEmpty;

  int CellIndex(int row, int col) const;
};

}  // namespace tcrowd

#endif  // TCROWD_DATA_ANSWER_H_
