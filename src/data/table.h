#ifndef TCROWD_DATA_TABLE_H_
#define TCROWD_DATA_TABLE_H_

#include <vector>

#include "common/status.h"
#include "data/schema.h"
#include "data/value.h"

namespace tcrowd {

/// Address of one cell (task) c_ij: row i (entity) and column j (attribute).
struct CellRef {
  int row = 0;
  int col = 0;

  bool operator==(const CellRef& other) const {
    return row == other.row && col == other.col;
  }
};

/// Dense N x M grid of cell values conforming to a Schema. Used both for
/// ground truth and for estimated truth. Cells may be missing (invalid
/// Value) — e.g. unlabeled ground truth.
class Table {
 public:
  Table() = default;
  Table(Schema schema, int num_rows);

  const Schema& schema() const { return schema_; }
  int num_rows() const { return num_rows_; }
  int num_columns() const { return schema_.num_columns(); }
  int num_cells() const { return num_rows_ * num_columns(); }

  const Value& at(int row, int col) const;
  const Value& at(CellRef cell) const { return at(cell.row, cell.col); }

  /// Sets a cell. The value's type must match the column type (checked).
  void Set(int row, int col, const Value& value);
  void Set(CellRef cell, const Value& value) { Set(cell.row, cell.col, value); }

  /// All cell addresses in row-major order.
  std::vector<CellRef> AllCells() const;

  /// Checks every non-missing value matches its column's type and domain
  /// (label in range; number within [min,max] is NOT enforced — workers and
  /// generators may exceed nominal bounds).
  Status Validate() const;

 private:
  Schema schema_;
  int num_rows_ = 0;
  std::vector<Value> cells_;  // row-major

  int Index(int row, int col) const;
};

}  // namespace tcrowd

#endif  // TCROWD_DATA_TABLE_H_
