#include "data/value.h"

#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace tcrowd {

const char* ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kCategorical:
      return "categorical";
    case ColumnType::kContinuous:
      return "continuous";
  }
  return "?";
}

int Value::label() const {
  TCROWD_CHECK(is_categorical()) << "label() on " << ToString();
  return label_;
}

double Value::number() const {
  TCROWD_CHECK(is_continuous()) << "number() on " << ToString();
  return number_;
}

bool Value::operator==(const Value& other) const {
  if (valid_ != other.valid_) return false;
  if (!valid_) return true;
  if (type_ != other.type_) return false;
  if (type_ == ColumnType::kCategorical) return label_ == other.label_;
  return number_ == other.number_;
}

std::string Value::ToString() const {
  if (!valid_) return "missing";
  if (type_ == ColumnType::kCategorical) {
    return StrFormat("cat:%d", label_);
  }
  return StrFormat("num:%g", number_);
}

}  // namespace tcrowd
