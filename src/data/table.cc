#include "data/table.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace tcrowd {

Table::Table(Schema schema, int num_rows)
    : schema_(std::move(schema)), num_rows_(num_rows) {
  TCROWD_CHECK(num_rows >= 0) << "negative row count";
  cells_.resize(static_cast<size_t>(num_rows_) * schema_.num_columns());
}

int Table::Index(int row, int col) const {
  TCROWD_CHECK(row >= 0 && row < num_rows_) << "row " << row;
  TCROWD_CHECK(col >= 0 && col < num_columns()) << "col " << col;
  return row * num_columns() + col;
}

const Value& Table::at(int row, int col) const {
  return cells_[Index(row, col)];
}

void Table::Set(int row, int col, const Value& value) {
  if (value.valid()) {
    TCROWD_CHECK(value.type() == schema_.column(col).type)
        << "type mismatch at (" << row << "," << col << "): value "
        << value.ToString() << " vs column "
        << ColumnTypeName(schema_.column(col).type);
  }
  cells_[Index(row, col)] = value;
}

std::vector<CellRef> Table::AllCells() const {
  std::vector<CellRef> out;
  out.reserve(static_cast<size_t>(num_cells()));
  for (int i = 0; i < num_rows_; ++i) {
    for (int j = 0; j < num_columns(); ++j) {
      out.push_back(CellRef{i, j});
    }
  }
  return out;
}

Status Table::Validate() const {
  for (int i = 0; i < num_rows_; ++i) {
    for (int j = 0; j < num_columns(); ++j) {
      const Value& v = at(i, j);
      if (!v.valid()) continue;
      const ColumnSpec& col = schema_.column(j);
      if (v.type() != col.type) {
        return Status::InvalidArgument(StrFormat(
            "cell (%d,%d): type mismatch against column '%s'", i, j,
            col.name.c_str()));
      }
      if (v.is_categorical() &&
          (v.label() < 0 || v.label() >= col.num_labels())) {
        return Status::OutOfRange(StrFormat(
            "cell (%d,%d): label %d outside domain of size %d", i, j,
            v.label(), col.num_labels()));
      }
    }
  }
  return Status::Ok();
}

}  // namespace tcrowd
