#ifndef TCROWD_DATA_VALUE_H_
#define TCROWD_DATA_VALUE_H_

#include <cstdint>
#include <string>

namespace tcrowd {

/// Datatype of a table column (paper Definition 1): every non-key attribute
/// is either categorical (finite unordered label set) or continuous (real).
enum class ColumnType { kCategorical, kContinuous };

const char* ColumnTypeName(ColumnType type);

/// A single cell value: a label index into the column's label set for
/// categorical columns, or a real number for continuous columns. A Value is
/// only meaningful together with the Schema of its column.
class Value {
 public:
  /// Constructs a "missing" value (type-less). valid() is false.
  Value() = default;

  static Value Categorical(int label) {
    Value v;
    v.type_ = ColumnType::kCategorical;
    v.label_ = label;
    v.valid_ = true;
    return v;
  }
  static Value Continuous(double number) {
    Value v;
    v.type_ = ColumnType::kContinuous;
    v.number_ = number;
    v.valid_ = true;
    return v;
  }

  bool valid() const { return valid_; }
  ColumnType type() const { return type_; }
  bool is_categorical() const {
    return valid_ && type_ == ColumnType::kCategorical;
  }
  bool is_continuous() const {
    return valid_ && type_ == ColumnType::kContinuous;
  }

  /// Precondition: is_categorical().
  int label() const;
  /// Precondition: is_continuous().
  double number() const;

  /// Equality for categorical values is exact label identity; for continuous
  /// values it is exact double equality (use with care in tests only).
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Debug representation, e.g. "cat:3" or "num:1.75" or "missing".
  std::string ToString() const;

 private:
  ColumnType type_ = ColumnType::kCategorical;
  bool valid_ = false;
  int label_ = -1;
  double number_ = 0.0;
};

}  // namespace tcrowd

#endif  // TCROWD_DATA_VALUE_H_
