#ifndef TCROWD_DATA_SCHEMA_H_
#define TCROWD_DATA_SCHEMA_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/value.h"

namespace tcrowd {

/// Description of one non-key column of the crowdsourced table.
struct ColumnSpec {
  std::string name;
  ColumnType type = ColumnType::kCategorical;
  /// Label names for categorical columns; |labels| is the domain size |L_j|.
  /// Empty for continuous columns.
  std::vector<std::string> labels;
  /// Domain bounds for continuous columns (informational; used by
  /// generators and priors). Ignored for categorical columns.
  double min_value = 0.0;
  double max_value = 1.0;

  int num_labels() const { return static_cast<int>(labels.size()); }
};

/// The schema a requester publishes (paper Fig. 1, step 1): the non-key
/// columns of the table with their datatypes and domains.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnSpec> columns);

  /// Validation: categorical columns need >= 2 labels; continuous columns
  /// need min < max; names must be unique and non-empty.
  Status Validate() const;

  int num_columns() const { return static_cast<int>(columns_.size()); }
  const ColumnSpec& column(int j) const;
  const std::vector<ColumnSpec>& columns() const { return columns_; }

  /// Index of the column with the given name, or -1.
  int ColumnIndex(const std::string& name) const;

  /// Convenience builders.
  static ColumnSpec MakeCategorical(std::string name,
                                    std::vector<std::string> labels);
  static ColumnSpec MakeContinuous(std::string name, double min_value,
                                   double max_value);

  /// Indices of categorical / continuous columns, in ascending order.
  std::vector<int> CategoricalColumns() const;
  std::vector<int> ContinuousColumns() const;

 private:
  std::vector<ColumnSpec> columns_;
};

}  // namespace tcrowd

#endif  // TCROWD_DATA_SCHEMA_H_
