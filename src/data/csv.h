#ifndef TCROWD_DATA_CSV_H_
#define TCROWD_DATA_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace tcrowd {

/// Minimal RFC-4180-style CSV support: comma-separated fields, double-quote
/// quoting with "" escapes, \n or \r\n record separators. Sufficient for the
/// dataset/answer persistence this project needs.
namespace csv {

/// Parses one CSV document into rows of fields.
StatusOr<std::vector<std::vector<std::string>>> Parse(
    const std::string& content);

/// Serializes rows into a CSV document (always '\n' line endings). Fields
/// containing commas, quotes, or newlines are quoted.
std::string Serialize(const std::vector<std::vector<std::string>>& rows);

/// Whole-file helpers.
StatusOr<std::vector<std::vector<std::string>>> ReadFile(
    const std::string& path);
Status WriteFile(const std::string& path,
                 const std::vector<std::vector<std::string>>& rows);

}  // namespace csv
}  // namespace tcrowd

#endif  // TCROWD_DATA_CSV_H_
