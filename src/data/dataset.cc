#include "data/dataset.h"

#include <filesystem>

#include "common/string_util.h"
#include "data/csv.h"

namespace tcrowd {

namespace {

constexpr char kSchemaFile[] = "schema.csv";
constexpr char kTruthFile[] = "truth.csv";
constexpr char kAnswersFile[] = "answers.csv";

std::string ValueToField(const Value& v, const ColumnSpec& col) {
  if (!v.valid()) return "";
  if (v.is_categorical()) return col.labels[v.label()];
  return StrFormat("%.17g", v.number());
}

StatusOr<Value> FieldToValue(const std::string& field, const ColumnSpec& col) {
  if (field.empty()) return Value();  // missing
  if (col.type == ColumnType::kCategorical) {
    for (int l = 0; l < col.num_labels(); ++l) {
      if (col.labels[l] == field) return Value::Categorical(l);
    }
    return Status::NotFound("label '" + field + "' not in column '" +
                            col.name + "'");
  }
  auto num = ParseDouble(field);
  if (!num.ok()) return num.status();
  return Value::Continuous(*num);
}

}  // namespace

Status SaveDataset(const Dataset& dataset, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::IoError("cannot create directory: " + dir);

  // schema.csv: name, type, then either labels (categorical) or min,max.
  std::vector<std::vector<std::string>> schema_rows;
  for (const ColumnSpec& col : dataset.schema.columns()) {
    std::vector<std::string> row = {col.name, ColumnTypeName(col.type)};
    if (col.type == ColumnType::kCategorical) {
      for (const std::string& l : col.labels) row.push_back(l);
    } else {
      row.push_back(StrFormat("%.17g", col.min_value));
      row.push_back(StrFormat("%.17g", col.max_value));
    }
    schema_rows.push_back(std::move(row));
  }
  TCROWD_RETURN_IF_ERROR(
      csv::WriteFile(dir + "/" + kSchemaFile, schema_rows));

  // truth.csv: header of column names, then one row per entity.
  std::vector<std::vector<std::string>> truth_rows;
  {
    std::vector<std::string> header;
    for (const ColumnSpec& col : dataset.schema.columns()) {
      header.push_back(col.name);
    }
    truth_rows.push_back(std::move(header));
  }
  for (int i = 0; i < dataset.truth.num_rows(); ++i) {
    std::vector<std::string> row;
    for (int j = 0; j < dataset.schema.num_columns(); ++j) {
      row.push_back(
          ValueToField(dataset.truth.at(i, j), dataset.schema.column(j)));
    }
    truth_rows.push_back(std::move(row));
  }
  TCROWD_RETURN_IF_ERROR(csv::WriteFile(dir + "/" + kTruthFile, truth_rows));

  // answers.csv: worker, row, column name, value.
  std::vector<std::vector<std::string>> answer_rows;
  answer_rows.push_back({"worker", "row", "column", "value"});
  for (const Answer& a : dataset.answers.answers()) {
    const ColumnSpec& col = dataset.schema.column(a.cell.col);
    answer_rows.push_back({StrFormat("%d", a.worker),
                           StrFormat("%d", a.cell.row), col.name,
                           ValueToField(a.value, col)});
  }
  TCROWD_RETURN_IF_ERROR(
      csv::WriteFile(dir + "/" + kAnswersFile, answer_rows));
  return Status::Ok();
}

StatusOr<Dataset> LoadDataset(const std::string& dir) {
  Dataset dataset;
  dataset.name = std::filesystem::path(dir).filename().string();

  auto schema_rows = csv::ReadFile(dir + "/" + kSchemaFile);
  if (!schema_rows.ok()) return schema_rows.status();
  std::vector<ColumnSpec> columns;
  for (const auto& row : *schema_rows) {
    if (row.size() < 2) {
      return Status::InvalidArgument("schema row too short");
    }
    ColumnSpec col;
    col.name = row[0];
    if (row[1] == "categorical") {
      col.type = ColumnType::kCategorical;
      col.labels.assign(row.begin() + 2, row.end());
    } else if (row[1] == "continuous") {
      col.type = ColumnType::kContinuous;
      if (row.size() < 4) {
        return Status::InvalidArgument("continuous schema row needs min,max");
      }
      auto mn = ParseDouble(row[2]);
      if (!mn.ok()) return mn.status();
      auto mx = ParseDouble(row[3]);
      if (!mx.ok()) return mx.status();
      col.min_value = *mn;
      col.max_value = *mx;
    } else {
      return Status::InvalidArgument("unknown column type: " + row[1]);
    }
    columns.push_back(std::move(col));
  }
  dataset.schema = Schema(std::move(columns));
  TCROWD_RETURN_IF_ERROR(dataset.schema.Validate());

  auto truth_rows = csv::ReadFile(dir + "/" + kTruthFile);
  if (!truth_rows.ok()) return truth_rows.status();
  if (truth_rows->empty()) {
    return Status::InvalidArgument("truth.csv missing header");
  }
  int num_rows = static_cast<int>(truth_rows->size()) - 1;
  dataset.truth = Table(dataset.schema, num_rows);
  for (int i = 0; i < num_rows; ++i) {
    const auto& row = (*truth_rows)[i + 1];
    if (static_cast<int>(row.size()) != dataset.schema.num_columns()) {
      return Status::InvalidArgument(
          StrFormat("truth row %d has %zu fields, expected %d", i, row.size(),
                    dataset.schema.num_columns()));
    }
    for (int j = 0; j < dataset.schema.num_columns(); ++j) {
      auto v = FieldToValue(row[j], dataset.schema.column(j));
      if (!v.ok()) return v.status();
      dataset.truth.Set(i, j, *v);
    }
  }

  auto answer_rows = csv::ReadFile(dir + "/" + kAnswersFile);
  if (!answer_rows.ok()) return answer_rows.status();
  dataset.answers = AnswerSet(num_rows, dataset.schema.num_columns());
  for (size_t r = 1; r < answer_rows->size(); ++r) {
    const auto& row = (*answer_rows)[r];
    if (row.size() != 4) {
      return Status::InvalidArgument(
          StrFormat("answers row %zu has %zu fields, expected 4", r,
                    row.size()));
    }
    auto worker = ParseInt(row[0]);
    if (!worker.ok()) return worker.status();
    auto entity = ParseInt(row[1]);
    if (!entity.ok()) return entity.status();
    int j = dataset.schema.ColumnIndex(row[2]);
    if (j < 0) return Status::NotFound("unknown column: " + row[2]);
    auto v = FieldToValue(row[3], dataset.schema.column(j));
    if (!v.ok()) return v.status();
    if (!v->valid()) {
      return Status::InvalidArgument("answer value may not be missing");
    }
    if (*entity < 0 || *entity >= num_rows) {
      return Status::OutOfRange(StrFormat("answer row index %lld",
                                          static_cast<long long>(*entity)));
    }
    dataset.answers.Add(static_cast<WorkerId>(*worker),
                        CellRef{static_cast<int>(*entity), j}, *v);
  }
  return dataset;
}

}  // namespace tcrowd
