#include "data/answer.h"

#include <algorithm>

#include "common/logging.h"

namespace tcrowd {

const std::vector<int> AnswerSet::kEmpty;

AnswerSet::AnswerSet(int num_rows, int num_cols)
    : num_rows_(num_rows), num_cols_(num_cols) {
  TCROWD_CHECK(num_rows >= 0 && num_cols >= 0);
  by_cell_.resize(static_cast<size_t>(num_rows) * num_cols);
}

int AnswerSet::CellIndex(int row, int col) const {
  TCROWD_CHECK(row >= 0 && row < num_rows_) << "row " << row;
  TCROWD_CHECK(col >= 0 && col < num_cols_) << "col " << col;
  return row * num_cols_ + col;
}

int AnswerSet::Add(const Answer& answer) {
  TCROWD_CHECK(answer.worker >= 0) << "negative worker id";
  TCROWD_CHECK(answer.value.valid()) << "missing answer value";
  int id = static_cast<int>(answers_.size());
  answers_.push_back(answer);
  by_cell_[CellIndex(answer.cell.row, answer.cell.col)].push_back(id);
  if (static_cast<size_t>(answer.worker) >= by_worker_.size()) {
    by_worker_.resize(answer.worker + 1);
  }
  by_worker_[answer.worker].push_back(id);
  return id;
}

const std::vector<int>& AnswerSet::AnswersForCell(int row, int col) const {
  return by_cell_[CellIndex(row, col)];
}

const std::vector<int>& AnswerSet::AnswersForWorker(WorkerId worker) const {
  if (worker < 0 || static_cast<size_t>(worker) >= by_worker_.size()) {
    return kEmpty;
  }
  return by_worker_[worker];
}

std::vector<int> AnswerSet::AnswersForWorkerInRow(WorkerId worker,
                                                  int row) const {
  std::vector<int> out;
  for (int id : AnswersForWorker(worker)) {
    if (answers_[id].cell.row == row) out.push_back(id);
  }
  return out;
}

bool AnswerSet::HasAnswered(WorkerId worker, CellRef cell) const {
  for (int id : AnswersForWorker(worker)) {
    if (answers_[id].cell == cell) return true;
  }
  return false;
}

std::vector<WorkerId> AnswerSet::Workers() const {
  std::vector<WorkerId> out;
  for (WorkerId w = 0; w < static_cast<WorkerId>(by_worker_.size()); ++w) {
    if (!by_worker_[w].empty()) out.push_back(w);
  }
  return out;
}

double AnswerSet::MeanAnswersPerCell() const {
  size_t cells = by_cell_.size();
  if (cells == 0) return 0.0;
  return static_cast<double>(answers_.size()) / static_cast<double>(cells);
}

bool AnswerSet::RemoveLast(WorkerId worker, CellRef cell) {
  const std::vector<int>& ids = by_cell_[CellIndex(cell.row, cell.col)];
  int target = -1;
  for (size_t k = ids.size(); k-- > 0;) {
    if (answers_[ids[k]].worker == worker) {
      target = ids[k];
      break;
    }
  }
  if (target < 0) return false;
  answers_.erase(answers_.begin() + target);
  // Every id above `target` shifts down by one; rebuild both indexes so the
  // set stays gap-free for policies that refit from it. O(total), which the
  // rare retraction path can afford.
  for (auto& ids_for_cell : by_cell_) ids_for_cell.clear();
  for (auto& ids_for_worker : by_worker_) ids_for_worker.clear();
  for (int id = 0; id < static_cast<int>(answers_.size()); ++id) {
    const Answer& a = answers_[id];
    by_cell_[CellIndex(a.cell.row, a.cell.col)].push_back(id);
    by_worker_[a.worker].push_back(id);
  }
  return true;
}

void AnswerSet::ReplaceValue(int id, const Value& value) {
  TCROWD_CHECK(id >= 0 && static_cast<size_t>(id) < answers_.size());
  TCROWD_CHECK(value.valid());
  TCROWD_CHECK(value.type() == answers_[id].value.type())
      << "noise injection must preserve the answer type";
  answers_[id].value = value;
}

}  // namespace tcrowd
