#include "data/schema.h"

#include <unordered_set>

#include "common/logging.h"

namespace tcrowd {

Schema::Schema(std::vector<ColumnSpec> columns)
    : columns_(std::move(columns)) {}

Status Schema::Validate() const {
  std::unordered_set<std::string> names;
  for (const ColumnSpec& col : columns_) {
    if (col.name.empty()) {
      return Status::InvalidArgument("column with empty name");
    }
    if (!names.insert(col.name).second) {
      return Status::InvalidArgument("duplicate column name: " + col.name);
    }
    if (col.type == ColumnType::kCategorical) {
      if (col.num_labels() < 2) {
        return Status::InvalidArgument(
            "categorical column '" + col.name + "' needs >= 2 labels");
      }
      std::unordered_set<std::string> labels;
      for (const std::string& l : col.labels) {
        if (!labels.insert(l).second) {
          return Status::InvalidArgument("duplicate label '" + l +
                                         "' in column '" + col.name + "'");
        }
      }
    } else {
      if (!(col.min_value < col.max_value)) {
        return Status::InvalidArgument(
            "continuous column '" + col.name + "' needs min < max");
      }
    }
  }
  return Status::Ok();
}

const ColumnSpec& Schema::column(int j) const {
  TCROWD_CHECK(j >= 0 && j < num_columns()) << "column index " << j;
  return columns_[j];
}

int Schema::ColumnIndex(const std::string& name) const {
  for (int j = 0; j < num_columns(); ++j) {
    if (columns_[j].name == name) return j;
  }
  return -1;
}

ColumnSpec Schema::MakeCategorical(std::string name,
                                   std::vector<std::string> labels) {
  ColumnSpec spec;
  spec.name = std::move(name);
  spec.type = ColumnType::kCategorical;
  spec.labels = std::move(labels);
  return spec;
}

ColumnSpec Schema::MakeContinuous(std::string name, double min_value,
                                  double max_value) {
  ColumnSpec spec;
  spec.name = std::move(name);
  spec.type = ColumnType::kContinuous;
  spec.min_value = min_value;
  spec.max_value = max_value;
  return spec;
}

std::vector<int> Schema::CategoricalColumns() const {
  std::vector<int> out;
  for (int j = 0; j < num_columns(); ++j) {
    if (columns_[j].type == ColumnType::kCategorical) out.push_back(j);
  }
  return out;
}

std::vector<int> Schema::ContinuousColumns() const {
  std::vector<int> out;
  for (int j = 0; j < num_columns(); ++j) {
    if (columns_[j].type == ColumnType::kContinuous) out.push_back(j);
  }
  return out;
}

}  // namespace tcrowd
